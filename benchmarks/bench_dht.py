"""E16 (extension) — Koorde: de Bruijn routing as a DHT, vs Chord.

The calibration note for this reproduction observes that "Koorde variants
exist" — Koorde *is* the de Bruijn paper's routing idea re-deployed as a
peer-to-peer lookup structure.  This bench measures the classical
comparison on static random rings:

* hops: both resolve lookups in O(log N);
* state: Koorde needs **2 pointers per node** (successor + de Bruijn
  finger) where Chord needs b = O(log N) fingers — the constant-degree
  advantage inherited straight from the de Bruijn graph.
"""

from __future__ import annotations

import math
import random

from repro.analysis.tables import format_table
from repro.dht.chord import ChordRing
from repro.dht.koorde import KoordeRing

BITS = 12  # 4096-id space
POPULATIONS = (16, 64, 256, 1024)
LOOKUPS = 300


def _random_ring(n: int, seed: int):
    rng = random.Random(seed)
    return sorted(rng.sample(range(1 << BITS), n)), rng


def test_koorde_vs_chord(benchmark, report):
    """Mean/max lookup hops and per-node state across ring sizes."""

    def sweep():
        rows = []
        for n in POPULATIONS:
            nodes, rng = _random_ring(n, seed=n)
            koorde = KoordeRing(BITS, nodes)
            chord = ChordRing(BITS, nodes)
            pairs = [(rng.choice(nodes), rng.randrange(1 << BITS)) for _ in range(LOOKUPS)]
            k_mean, k_max, k_db, k_succ = koorde.lookup_statistics(pairs)
            c_mean, c_max = chord.lookup_statistics(pairs)
            rows.append((n, math.log2(n), k_mean, k_max, koorde.state_size(),
                         c_mean, c_max, chord.state_size()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, log_n, k_mean, k_max, k_state, c_mean, c_max, c_state in rows:
        # Correctness is asserted inside lookup_statistics path checks;
        # here pin the scaling claims.  The basic Koorde protocol pays a
        # ~2-3x constant over Chord per bit (one de Bruijn hop plus ~2
        # successor corrections) in exchange for O(1) state.
        assert k_mean <= 3.5 * log_n + 4
        assert c_mean <= 1.5 * log_n + 2
        assert k_state == 2 and c_state == BITS
    # Logarithmic growth: 64x more nodes costs ~4x hops, far below linear.
    assert rows[-1][2] < 6 * rows[0][2]
    ratio = rows[-1][2] / rows[0][2]
    population_ratio = POPULATIONS[-1] / POPULATIONS[0]
    assert ratio < population_ratio / 4
    report(f"E16 (extension) — Koorde (de Bruijn DHT) vs Chord, {BITS}-bit ids, "
           f"{LOOKUPS} random lookups per ring\n"
           + format_table(
               ["N", "log2 N", "koorde mean", "koorde max", "koorde state/node",
                "chord mean", "chord max", "chord state/node"],
               rows, precision=2)
           + "\nsame O(log N) hop growth; Koorde pays 2 pointers/node vs Chord's log N —"
           "\nthe de Bruijn degree/diameter trade, thirteen years later.")


def test_koorde_start_optimization_ablation(benchmark, report):
    """The start-imaginary optimisation: fewer de Bruijn hops per lookup."""

    def sweep():
        rows = []
        for n in (64, 512):
            nodes, rng = _random_ring(n, seed=7 * n)
            ring = KoordeRing(BITS, nodes)
            pairs = [(rng.choice(nodes), rng.randrange(1 << BITS)) for _ in range(LOOKUPS)]
            for label, optimized in [("optimized i", True), ("plain i = m", False)]:
                mean_hops, max_hops, db, succ = ring.lookup_statistics(
                    pairs, optimized_start=optimized)
                rows.append((n, label, mean_hops, max_hops, db, succ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n in (64, 512):
        optimized = next(r for r in rows if r[0] == n and r[1] == "optimized i")
        plain = next(r for r in rows if r[0] == n and r[1] == "plain i = m")
        assert optimized[4] <= plain[4]  # fewer (or equal) de Bruijn hops
        assert optimized[2] <= plain[2] + 1e-9  # and no worse overall
    report("E16 (ablation) — Koorde start-imaginary optimisation\n"
           + format_table(
               ["N", "start rule", "mean hops", "max hops",
                "mean de Bruijn hops", "mean successor hops"], rows, precision=2))
