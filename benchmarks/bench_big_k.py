"""E22 — Big-k scale: array-native BFS compile + lazy sharded serving.

Two measurements around :mod:`repro.core.arraybfs` and
:mod:`repro.core.shards`, the PR-6 answer to "the compiled-table path
stops at DG(2,12)":

1. **Kernel speedup** — single-core wall-clock to compile the DG(2,12)
   undirected next-hop table with the legacy pure-python BFS kernel vs
   the whole-frontier numpy kernel, asserted byte-identical and >= 5x
   faster.  This is the compiler the lazy shard tier runs on demand, so
   its speed bounds how fast cold destinations become O(1).
2. **Sharded serving vs memory budget** — sustained resolve throughput
   on DG(2,16) (N = 65536, full table ~8 GB: cannot exist) through a
   :class:`~repro.core.shards.ShardedRouteTable` at a sweep of byte
   budgets, over a zipf-ish workload whose hot set spans more groups
   than the smallest budget can hold.  Shows the knee: when the budget
   covers the working set qps is table-speed; below it, LRU churn pays
   a shard recompile per eviction.

Results append to ``BENCH_big_k.json`` at the repo root in the
:mod:`repro.benchio` envelope.  ``test_big_k_smoke`` runs the same
machinery on DG(2,10) for CI (array-kernel byte-identity when numpy is
installed, then 500 queries through a 4 MB shard budget).
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Tuple

import pytest

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.core.arraybfs import numpy_available
from repro.core.parallel import compile_table_buffers
from repro.core.shards import ShardedRouteTable
from repro.core.tables import CompiledRouteTable

#: The kernel-speedup graph: the biggest the legacy kernel can still
#: compile in benchmark-friendly time (~10 s serial).
KERNEL_GRAPH: Tuple[int, int] = (2, 12)

#: Acceptance bar: the array kernel must beat the python loop by this
#: factor on one core (ISSUE 6 tentpole).
KERNEL_SPEEDUP_MIN = 5.0

#: The serving graph: N = 65536, full table 8 GB — shard-tier territory.
SERVE_GRAPH: Tuple[int, int] = (2, 16)

#: Resident-shard byte budgets to sweep (MiB).
BUDGET_SWEEP_MB: Tuple[int, ...] = (8, 32, 64)

#: Hot destination groups in the serving workload — sized to overflow
#: the smallest budget (8 MiB / 512 KiB shards = 16 resident) so the
#: sweep actually shows eviction churn.
HOT_GROUPS = 24

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_big_k.json")


def _measure_kernel_speedup(d: int, k: int) -> Dict[str, object]:
    """Serial python-kernel vs array-kernel compile, byte-identity checked."""
    start = time.perf_counter()
    py_dist, py_act = compile_table_buffers(d, k, workers=1, kernel="python")
    python_seconds = time.perf_counter() - start

    start = time.perf_counter()
    ar_dist, ar_act = compile_table_buffers(d, k, workers=1, kernel="array")
    array_seconds = time.perf_counter() - start

    assert bytes(ar_dist) == bytes(py_dist), "array kernel distance bytes diverged"
    assert bytes(ar_act) == bytes(py_act), "array kernel action bytes diverged"
    return {
        "graph": {"d": d, "k": k, "n": d**k},
        "python_seconds": python_seconds,
        "array_seconds": array_seconds,
        "speedup": python_seconds / array_seconds,
        "byte_identical": True,
    }


def _serving_workload(d: int, k: int, rows_per_shard: int,
                      queries: int, seed: int) -> List[Tuple[int, int]]:
    """(source, destination) pairs over HOT_GROUPS destination groups.

    Group popularity is harmonic (zipf-ish) so budgets between "a few
    shards" and "the whole hot set" land on different hit rates.
    """
    n = d**k
    rng = random.Random(seed)
    groups = rng.sample(range(n // rows_per_shard), HOT_GROUPS)
    weights = [1.0 / (rank + 1) for rank in range(HOT_GROUPS)]
    pairs = []
    for _ in range(queries):
        group = rng.choices(groups, weights)[0]
        dest = group * rows_per_shard + rng.randrange(rows_per_shard)
        pairs.append((rng.randrange(n), dest))
    return pairs


def _measure_serving(d: int, k: int, budgets_mb: Tuple[int, ...],
                     rows_per_shard: int = 4,
                     queries: int = 4000, seed: int = 0xE22) -> List[Dict[str, object]]:
    """Sustained resolve qps through the shard tier per byte budget.

    ``synchronous=True`` charges every cold shard compile to the
    measured wall-clock — the honest cost of an under-provisioned
    budget; the background mode would hide it in the planner tier.
    """
    pairs = _serving_workload(d, k, rows_per_shard, queries, seed)
    rows: List[Dict[str, object]] = []
    for budget_mb in budgets_mb:
        manager = ShardedRouteTable(
            d, k, byte_budget=budget_mb << 20,
            rows_per_shard=rows_per_shard, synchronous=True)
        start = time.perf_counter()
        for source, dest in pairs:
            answer = manager.resolve_packed(source, dest, want_path=False)
            assert answer is not None
        elapsed = time.perf_counter() - start
        stats = manager.stats()
        manager.close()
        rows.append({
            "budget_mb": budget_mb,
            "qps": queries / elapsed,
            "seconds": elapsed,
            "hit_rate": stats["hits"] / max(1, stats["hits"] + stats["misses"]),
            "compiled": stats["compiled"],
            "evictions": stats["evictions"],
            "resident_bytes": stats["resident_bytes"],
        })
    return rows


def test_big_k(benchmark, report):
    """The full E22 measurement; writes BENCH_big_k.json."""
    if not numpy_available():
        pytest.skip("the array kernel needs numpy")
    d, k = KERNEL_GRAPH

    def measure():
        record: Dict[str, object] = {
            "kernel": _measure_kernel_speedup(*KERNEL_GRAPH),
            "serving": {
                "graph": {"d": SERVE_GRAPH[0], "k": SERVE_GRAPH[1],
                          "n": SERVE_GRAPH[0]**SERVE_GRAPH[1]},
                "hot_groups": HOT_GROUPS,
                "budgets": _measure_serving(*SERVE_GRAPH, BUDGET_SWEEP_MB),
            },
        }
        return record

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    append_record(JSON_PATH, record, bench="big_k")

    kern = record["kernel"]
    report(f"E22 — DG({d},{k}) single-core compile kernels\n"
           + format_kv_block("array-native BFS vs python loop", [
               ("python seconds", round(kern["python_seconds"], 2)),
               ("array seconds", round(kern["array_seconds"], 2)),
               ("speedup", round(kern["speedup"], 2)),
               ("byte identical", kern["byte_identical"]),
           ]))
    serve = record["serving"]
    report(f"E22 — DG({serve['graph']['d']},{serve['graph']['k']}) sharded "
           f"serving vs byte budget ({HOT_GROUPS} hot groups)\n"
           + format_table(
               ["budget MiB", "qps", "hit rate", "compiled", "evictions"],
               [[r["budget_mb"], r["qps"], r["hit_rate"], r["compiled"],
                 r["evictions"]] for r in serve["budgets"]], precision=2))

    # Acceptance (ISSUE 6): >= 5x single-core, byte-identical.
    assert kern["speedup"] >= KERNEL_SPEEDUP_MIN, (
        f"array kernel speedup {kern['speedup']:.2f}x below "
        f"{KERNEL_SPEEDUP_MIN}x on DG({d},{k})"
    )
    # The sweep must show budget actually buying throughput: the
    # largest budget holds the hot set (no evictions) and serves at
    # least as fast as the thrashing smallest budget.
    budgets = serve["budgets"]
    assert budgets[-1]["evictions"] == 0
    assert budgets[-1]["qps"] >= budgets[0]["qps"]


def test_big_k_smoke(report):
    """Fast CI leg (the big-k-smoke job): DG(2,10) identity + a 4 MB
    shard budget serving 500 queries correctly."""
    d, k = 2, 10
    n = d**k

    py_dist, py_act = compile_table_buffers(d, k, workers=1, kernel="python")
    if numpy_available():
        ar_dist, ar_act = compile_table_buffers(d, k, workers=1,
                                                kernel="array")
        assert bytes(ar_dist) == bytes(py_dist)
        assert bytes(ar_act) == bytes(py_act)
        report(f"E22 smoke — DG({d},{k}) array kernel byte-identical")
    else:
        report("E22 smoke — numpy unavailable, array-identity leg not run")
    table = CompiledRouteTable(d, k, False, bytes(py_act), bytes(py_dist))

    # 500 queries through a 4 MB budget, every answer checked against
    # the full table (eviction churn is covered in tests/test_shards.py;
    # DG(2,10)'s entire table is 2 MB, so this budget never evicts).
    manager = ShardedRouteTable(d, k, byte_budget=4 << 20,
                                rows_per_shard=32, synchronous=True)
    rng = random.Random(0xE22)
    for _ in range(500):
        source, dest = rng.randrange(n), rng.randrange(n)
        distance, actions = manager.resolve_packed(source, dest,
                                                   want_path=True)
        assert distance == table.distance_packed(source, dest)
        assert actions == table.path_actions(source, dest)
    stats = manager.stats()
    manager.close()
    assert stats["resident_bytes"] <= 4 << 20
    report("E22 smoke — 500 queries OK through a 4 MB shard budget: "
           f"{stats['hits']} hits, {stats['compiled']} compiles, "
           f"{stats['resident_bytes']} resident bytes")
