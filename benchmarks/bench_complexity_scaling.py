"""E4 — Section 3 complexity claims: O(k), O(k²) and O(k) again.

The paper's complexity statements:

* Algorithm 1 (uni-directional routing) — O(k) time and space;
* Algorithm 2 (bi-directional, matching functions) — O(k²) time, O(k) space;
* Algorithm 4 (bi-directional, prefix trees) — O(k) time and space.

This bench times all three on random vertex pairs across a k sweep, fits
log-log slopes, and reports the measured exponents together with the
k where the linear Algorithm 4 starts beating the quadratic Algorithm 2 —
the paper's closing remark ("when the diameter k ... is small, the use of
conceptually simpler pattern matching algorithms ... may not be worse").
"""

from __future__ import annotations

import math
import random
import time

import pytest

from repro.analysis.tables import format_table
from repro.core.routing import shortest_path_undirected, shortest_path_unidirectional
from repro.core.word import random_word

K_SWEEP = (16, 32, 64, 128, 256)
PAIRS_PER_K = 8


def _pairs(k: int, count: int = PAIRS_PER_K):
    rng = random.Random(k)
    return [(random_word(2, k, rng), random_word(2, k, rng)) for _ in range(count)]


def _run_alg1(pairs):
    for x, y in pairs:
        shortest_path_unidirectional(x, y)


def _run_alg2(pairs):
    for x, y in pairs:
        shortest_path_undirected(x, y, method="matching")


def _run_alg4(pairs):
    for x, y in pairs:
        shortest_path_undirected(x, y, method="suffix_tree")


ALGORITHMS = {
    "alg1-unidirectional": _run_alg1,
    "alg2-matching": _run_alg2,
    "alg4-suffix-tree": _run_alg4,
}


@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_routing_time_at_k(benchmark, name, k):
    """pytest-benchmark timing of each algorithm at each k."""
    pairs = _pairs(k)
    benchmark(ALGORITHMS[name], pairs)


def _measure(fn, pairs, repeats=5):
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn(pairs)
        best = min(best, time.perf_counter() - start)
    return best


def test_scaling_exponents(benchmark, report):
    """Fit log-log slopes; assert quadratic vs linear separation."""

    def sweep():
        results = {name: [] for name in ALGORITHMS}
        for k in K_SWEEP:
            pairs = _pairs(k)
            for name, fn in ALGORITHMS.items():
                results[name].append((k, _measure(fn, pairs)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slopes = {}
    for name, points in results.items():
        xs = [math.log(k) for k, _ in points]
        ys = [math.log(t) for _, t in points]
        n = len(xs)
        mean_x, mean_y = sum(xs) / n, sum(ys) / n
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
            (x - mean_x) ** 2 for x in xs
        )
        slopes[name] = slope
    # The quadratic algorithm must scale visibly worse than the linear ones.
    assert slopes["alg2-matching"] > slopes["alg4-suffix-tree"] + 0.5
    assert slopes["alg2-matching"] > 1.5
    assert slopes["alg4-suffix-tree"] < 1.6
    assert slopes["alg1-unidirectional"] < 1.6
    crossover = None
    for k, t2 in results["alg2-matching"]:
        t4 = dict(results["alg4-suffix-tree"])[k]
        if t4 < t2:
            crossover = k
            break
    rows = [
        (name, slopes[name], *(f"{t * 1e3:.2f}ms" for _, t in results[name]))
        for name in sorted(ALGORITHMS)
    ]
    report("E4 — complexity scaling (8 pairs per k; best-of-5 wall clock)\n"
           + format_table(["algorithm", "log-log slope"] + [f"k={k}" for k in K_SWEEP], rows)
           + f"\npaper claims: alg1 O(k), alg2 O(k^2), alg4 O(k)"
           + f"\nmeasured crossover (alg4 faster than alg2) at k = {crossover}")
