"""E9 (extension) — one-to-all broadcast on DN(d, k).

Beyond the paper's artifacts: the collective-communication workload that
motivates de Bruijn multiprocessors (Samatham–Pradhan).  Compares the
BFS-tree relay against the naive root-unicast storm and against the
eccentricity lower bound, across network sizes.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.network.broadcast import (
    broadcast_lower_bound,
    simulate_tree_broadcast,
    simulate_unicast_broadcast,
)
from repro.network.router import BidirectionalOptimalRouter

SIZES = [(2, 3), (2, 4), (2, 5), (2, 6), (2, 7), (3, 3), (3, 4)]


def test_broadcast_scaling(benchmark, report):
    """Tree-relay makespan grows ~linearly in k; unicast grows ~linearly in N."""

    def sweep():
        rows = []
        for d, k in SIZES:
            root = (0,) * k
            n = d**k
            bound = broadcast_lower_bound(d, k, root)
            _, tree_time = simulate_tree_broadcast(d, k, root)
            _, unicast_time = simulate_unicast_broadcast(
                d, k, root, BidirectionalOptimalRouter())
            rows.append((d, k, n, bound, tree_time, unicast_time,
                         unicast_time / tree_time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for d, k, n, bound, tree_time, unicast_time, speedup in rows:
        assert tree_time >= bound
        assert tree_time <= 3 * d * k  # O(d·k), not O(N)
        assert unicast_time >= (n - 1) / (2 * d)  # root-link serialisation
        if n >= 32:
            assert speedup > 1.5
    report("E9 (extension) — one-to-all broadcast makespans\n"
           + format_table(["d", "k", "N", "lower bound", "tree relay",
                           "unicast storm", "speedup"], rows, precision=2)
           + "\ntree relay stays O(d*k); the unicast storm pays Θ(N/d) at the root links.")


def test_tree_broadcast_throughput(benchmark):
    """pytest-benchmark timing of a DN(2,6) tree broadcast."""
    result = benchmark(lambda: simulate_tree_broadcast(2, 6)[0].delivered_count)
    assert result == 63


def test_aggregation_convergecast(benchmark, report):
    """All-to-one reduction up the tree vs the naive all-to-root storm."""
    from repro.network.broadcast import simulate_tree_aggregation

    def sweep():
        rows = []
        for d, k in [(2, 4), (2, 5), (2, 6), (3, 3)]:
            n = d**k
            _, aggregated = simulate_tree_aggregation(d, k)
            _, naive = simulate_unicast_broadcast(
                d, k, (0,) * k, BidirectionalOptimalRouter())
            rows.append((d, k, n, aggregated, naive, naive / aggregated))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for d, k, n, aggregated, naive, speedup in rows:
        assert aggregated < naive
        if n >= 32:
            assert speedup > 1.4
    report("E9 (extension) — convergecast: tree aggregation vs all-to-root storm\n"
           + format_table(["d", "k", "N", "tree aggregation", "naive storm", "speedup"],
                          rows, precision=2))


def test_gossip_vs_tree_broadcast(benchmark, report):
    """Unstructured gossip vs the spanning tree, healthy and under faults."""
    import random as _random

    from repro.network.gossip import push_gossip

    def sweep():
        rows = []
        for d, k in [(2, 4), (2, 6), (3, 3)]:
            n = d**k
            root = (0,) * k
            _, tree_time = simulate_tree_broadcast(d, k, root)
            gossip = push_gossip(d, k, root, rng=_random.Random(n))
            rows.append((d, k, n, tree_time, gossip.rounds, gossip.messages,
                         gossip.messages / max(n - 1, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for d, k, n, tree_time, rounds, messages, redundancy in rows:
        assert rounds >= __import__("math").ceil(__import__("math").log2(n))
        assert messages >= n - 1  # at least one message per informed site
        assert redundancy < 6 * __import__("math").log2(n)  # bounded waste
    report("E9 (extension) — push gossip vs tree broadcast\n"
           + format_table(["d", "k", "N", "tree makespan", "gossip rounds",
                           "gossip messages", "messages per site"], rows, precision=2)
           + "\ngossip needs no tree and shrugs off failures, paying redundant sends;"
           "\nthe tree is message-optimal but a single dead interior site orphans a subtree.")
