"""E14 (extension) — average-case robustness under random failures.

E7 pins the worst-case d−1 guarantee; this sweep measures the average
case well beyond it: a random fraction of sites fails and we record how
much of the network stays mutually reachable, and the detour factor
(path stretch) surviving routes pay.  de Bruijn graphs degrade gracefully:
most of the network stays in one component far past the worst-case bound,
with modest stretch.
"""

from __future__ import annotations

from repro.analysis.robustness import random_failure_sweep
from repro.analysis.tables import format_table

D, K = 2, 6  # 64 sites
FRACTIONS = (0.0, 0.05, 0.10, 0.20, 0.30, 0.40)


def test_random_failure_sweep(benchmark, report):
    rows_data = benchmark.pedantic(
        lambda: random_failure_sweep(D, K, FRACTIONS, stretch_samples=80, seed=1990),
        rounds=1, iterations=1,
    )
    rows = [
        (p.failure_fraction, p.failed_count, p.component_fraction,
         p.reachable_fraction, p.mean_stretch, p.max_stretch)
        for p in rows_data
    ]
    baseline = rows_data[0]
    assert baseline.component_fraction == 1.0
    assert baseline.mean_stretch == 1.0
    for point in rows_data:
        assert point.mean_stretch >= 1.0 - 1e-9 or point.mean_stretch == 0.0
    # Graceful degradation: at 20% random failures most of the network
    # still hangs together.
    at_20 = next(p for p in rows_data if abs(p.failure_fraction - 0.20) < 1e-9)
    assert at_20.component_fraction > 0.8
    report(f"E14 (extension) — random failures on DN({D},{K})\n"
           + format_table(
               ["failure fraction", "failed sites", "largest component",
                "reachable pairs", "mean stretch", "max stretch"],
               rows, precision=3)
           + "\nworst-case tolerance is d-1, but random damage degrades gracefully: "
           "\nthe giant component persists far beyond the bound, at modest stretch.")
