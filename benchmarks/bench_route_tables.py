"""E18 — Parallel route-table compiler and the O(1) table-driven fast path.

Three measurements around :mod:`repro.core.parallel` /
:mod:`repro.core.tables`:

1. **Compile scaling** — wall-clock seconds to compile the DG(2,12)
   undirected next-hop table with 1, 2 and 4 BFS shard workers.  The
   sharded and serial engines are asserted *byte-identical* on every
   sweep point; the >= 2x speedup bar at 4 workers only applies when the
   machine actually exposes >= 4 CPUs (a 1-CPU container cannot speed
   anything up by forking — the record stores the CPU count so the
   trajectory stays interpretable).
2. **Table-driven throughput** — routed messages/sec on the E17
   steady-state workload, compiled table vs the PR-1 warm
   :class:`RouteCache` baseline.  The table path must at least match the
   warm cache: it does strictly less per message (no plan list, one byte
   read per hop).
3. **Persistence** — save cost and mmap-load cost of the compiled
   artifact, with a byte-identity roundtrip check.

Results are appended to ``BENCH_route_tables.json`` at the repo root in
the :mod:`repro.benchio` envelope.  ``test_route_tables_smoke`` runs the
same machinery on DG(2,8) for the CI smoke job (``make bench-smoke``).
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Tuple

import pytest
from bench_routing_throughput import DISTINCT_PAIRS, REPEATS, _workload

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.core.distance import undirected_distance
from repro.core.parallel import available_cpus, compile_table_buffers
from repro.core.tables import CompiledRouteTable
from repro.core.word import random_word
from repro.network.router import BidirectionalOptimalRouter, TableDrivenRouter
from repro.network.simulator import Simulator, run_workload

#: The compile-scaling graph: big enough that BFS dominates process spawn.
GRAPH: Tuple[int, int] = (2, 12)
WORKER_SWEEP: Tuple[int, ...] = (1, 2, 4)
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_route_tables.json")

#: The parallel >= 2x acceptance bar only binds on machines with at
#: least this many CPUs; forking cannot beat serial on fewer cores.
PARALLEL_SPEEDUP_MIN_CPUS = 4


def _measure_compile(d: int, k: int,
                     sweep: Tuple[int, ...]) -> Tuple[List[Dict[str, float]],
                                                      Tuple[bytes, bytes]]:
    """Compile once per worker count; returns timings + the (dist, act)
    buffers, asserting every sweep point produces identical bytes."""
    rows: List[Dict[str, float]] = []
    reference: Tuple[bytes, bytes] = ()
    for workers in sweep:
        start = time.perf_counter()
        dist, act = compile_table_buffers(d, k, directed=False,
                                          workers=workers)
        elapsed = time.perf_counter() - start
        buffers = (bytes(dist), bytes(act))
        if not reference:
            reference = buffers
        else:
            assert buffers == reference, (
                f"{workers}-worker compile diverged from serial bytes"
            )
        # cpu_count rides along with every row so a timing read in
        # isolation (or merged across machines) stays interpretable.
        rows.append({"workers": workers, "seconds": elapsed,
                     "cpu_count": os.cpu_count()})
    serial = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_serial"] = serial / row["seconds"]
    return rows, reference


def _measure_throughput(d: int, k: int, table: CompiledRouteTable,
                        distinct: int = DISTINCT_PAIRS,
                        repeats: int = REPEATS,
                        rounds: int = 6) -> Dict[str, float]:
    """Table-driven vs warm-cache messages/sec on the E17 workload.

    The two paths are measured in *interleaved* best-of-``rounds`` pairs:
    clock drift on a busy machine then biases both alike instead of
    whichever happened to run last, which is what the ratio assert needs.
    """
    pairs, injections = _workload(d, k, distinct, repeats)
    warm_router = BidirectionalOptimalRouter(cache_size=4 * distinct,
                                             use_wildcards=False)
    for x, y in pairs:
        warm_router.plan(x, y)
    table_router = TableDrivenRouter(table=table)

    def one_run(router) -> float:
        simulator = Simulator(d, k)
        start = time.perf_counter()
        stats = run_workload(simulator, router, injections)
        elapsed = time.perf_counter() - start
        assert stats.delivered_count == len(injections)
        return elapsed

    warm_best = table_best = float("inf")
    for _ in range(rounds):
        warm_best = min(warm_best, one_run(warm_router))
        table_best = min(table_best, one_run(table_router))
    count = len(injections)
    return {
        "warm_cache_msgs_per_sec": count / warm_best,
        "table_msgs_per_sec": count / table_best,
        "speedup_vs_warm_cache": warm_best / table_best,
    }


def _measure_persistence(table: CompiledRouteTable) -> Dict[str, float]:
    """Save + mmap-load cost, with a byte-identity roundtrip check."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "table.routes")
        start = time.perf_counter()
        file_bytes = table.save(path)
        save_seconds = time.perf_counter() - start

        start = time.perf_counter()
        loaded = CompiledRouteTable.load(path)
        mmap_open_seconds = time.perf_counter() - start
        try:
            assert bytes(loaded.actions) == bytes(table.actions)
            assert bytes(loaded.distances) == bytes(table.distances)
        finally:
            loaded.close()
    return {
        "file_bytes": file_bytes,
        "save_seconds": save_seconds,
        "mmap_open_seconds": mmap_open_seconds,
    }


def test_route_tables(benchmark, report):
    """The full E18 measurement; writes BENCH_route_tables.json."""
    d, k = GRAPH

    def measure():
        record: Dict[str, object] = {
            "graph": {"d": d, "k": k, "n": d**k},
            "cpus": available_cpus(),
        }
        compile_rows, (dist, act) = _measure_compile(d, k, WORKER_SWEEP)
        record["compile"] = compile_rows
        table = CompiledRouteTable(d, k, False, act, dist)
        record["throughput"] = _measure_throughput(d, k, table)
        record["persistence"] = _measure_persistence(table)
        return record

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    append_record(JSON_PATH, record, bench="route_tables")

    report(f"E18 — DG({d},{k}) table compile scaling "
           f"({record['cpus']} CPU(s) available)\n"
           + format_table(
               ["workers", "seconds", "speedup vs serial"],
               [[r["workers"], r["seconds"], r["speedup_vs_serial"]]
                for r in record["compile"]], precision=2))
    thr = record["throughput"]
    pers = record["persistence"]
    report("E18 — table-driven simulator vs E17 warm cache\n"
           + format_kv_block(f"DG({d},{k}), {DISTINCT_PAIRS} pairs x "
                             f"{REPEATS} repeats", [
               ("warm-cache msg/s", round(thr["warm_cache_msgs_per_sec"], 1)),
               ("table-driven msg/s", round(thr["table_msgs_per_sec"], 1)),
               ("speedup", round(thr["speedup_vs_warm_cache"], 3)),
               ("table file bytes", pers["file_bytes"]),
               ("save seconds", round(pers["save_seconds"], 4)),
               ("mmap open seconds", round(pers["mmap_open_seconds"], 5)),
           ]))

    # Acceptance 1: the O(1) fast path must at least match the warm cache
    # on the planning-dominated workload — it does strictly less work.
    assert thr["speedup_vs_warm_cache"] >= 1.0, (
        f"table-driven path lost to the warm cache: "
        f"{thr['speedup_vs_warm_cache']:.2f}x"
    )
    # Acceptance 2: >= 2x compile speedup at 4 workers — only meaningful
    # where 4 workers can actually run in parallel.  On smaller machines
    # the sweep still runs (and the byte-equality assert still binds),
    # the record is already written, and the bar is an explicit SKIP in
    # the test report rather than a silent pass.
    by_workers = {int(r["workers"]): r for r in record["compile"]}
    if record["cpus"] < PARALLEL_SPEEDUP_MIN_CPUS or 4 not in by_workers:
        pytest.skip(
            f"{record['cpus']} CPU(s) available; the >= 2x @ 4-workers "
            f"bar requires >= {PARALLEL_SPEEDUP_MIN_CPUS} CPUs"
        )
    assert by_workers[4]["speedup_vs_serial"] >= 2.0, (
        f"4-worker compile speedup below 2x on a {record['cpus']}-CPU "
        f"machine: {by_workers[4]['speedup_vs_serial']:.2f}x"
    )


def test_route_tables_smoke(tmp_path):
    """Fast CI smoke: 2-worker compile == serial, and the table path
    routes a small simulation end to end."""
    d, k = 2, 8
    rows, (dist, act) = _measure_compile(d, k, (1, 2))
    assert rows[0]["seconds"] > 0 and rows[1]["seconds"] > 0
    table = CompiledRouteTable(d, k, False, act, dist)

    # Spot-check distances against the pure Algorithm 2 implementation.
    import random
    rng = random.Random(0xE18)
    for _ in range(50):
        x, y = random_word(d, k, rng), random_word(d, k, rng)
        assert table.distance(x, y) == undirected_distance(x, y)
        assert len(table.path(x, y)) == table.distance(x, y)

    # Save / mmap-load roundtrip.
    path = str(tmp_path / "smoke.routes")
    table.save(path)
    loaded = CompiledRouteTable.load(path)
    try:
        assert bytes(loaded.actions) == bytes(table.actions)
    finally:
        loaded.close()

    # One table-driven simulator scenario: everything delivered, all of
    # it through the O(1) fast path.
    _, injections = _workload(d, k, distinct=12, repeats=5)
    simulator = Simulator(d, k)
    stats = run_workload(simulator, TableDrivenRouter(table=table),
                         injections)
    assert stats.delivered_count == len(injections)
    assert stats.table_routed == stats.delivered_count
    assert stats.table_bytes == table.nbytes
    optimal = Simulator(d, k)
    baseline = run_workload(optimal, BidirectionalOptimalRouter(
        use_wildcards=False), injections)
    assert stats.mean_hops() == baseline.mean_hops()
