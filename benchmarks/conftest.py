"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*.py`` module regenerates one artifact of the paper (see
DESIGN.md Section 4) and prints its rows through :func:`report` so they
show up in ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations

import sys

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment tables past pytest's capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            sys.stdout.write("\n" + text + "\n")

    return _print
