"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*.py`` module regenerates one artifact of the paper (see
DESIGN.md Section 4) and prints its rows through :func:`report` so they
show up in ``pytest benchmarks/ --benchmark-only`` output.

The CI smoke job (``make bench-smoke``) selects the fast subset with
``-k smoke``; that naming convention is formalised here as a registered
``smoke`` marker — every ``*smoke*`` test is auto-marked, so
``-m smoke`` selects the exact same subset and new benches (E21's
``test_service_smoke`` included) opt in just by following the naming
scheme.
"""

from __future__ import annotations

import sys

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast CI subset of a bench (selected by make bench-smoke)",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "smoke" in item.name and item.get_closest_marker("smoke") is None:
            item.add_marker(pytest.mark.smoke)


@pytest.fixture
def report(capsys):
    """Print experiment tables past pytest's capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            sys.stdout.write("\n" + text + "\n")

    return _print
