"""E1 — Figure 1: structure of the de Bruijn graphs DG(2, 3) and beyond.

Regenerates the structural facts the paper states in Section 1 around
Figure 1: vertex/edge counts, the degree census after redundancy removal,
self-loop count, connectivity and diameter.  The undirected census uses
the *corrected* formula (see repro.graphs.properties docstring; the
scanned paper's statement is incomplete).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.graphs.debruijn import DeBruijnGraph
from repro.graphs.properties import (
    degree_census,
    expected_directed_census,
    expected_undirected_census,
    structural_report,
)

GRID = [(2, 3), (2, 4), (2, 6), (3, 3), (4, 2), (3, 4)]


def _census_rows():
    rows = []
    for d, k in GRID:
        for directed in (True, False):
            graph = DeBruijnGraph(d, k, directed=directed)
            census = degree_census(graph)
            expected = (
                expected_directed_census(d, k) if directed else expected_undirected_census(d, k)
            )
            rows.append(
                (
                    d,
                    k,
                    "directed" if directed else "undirected",
                    graph.order,
                    graph.size(),
                    str(dict(sorted(census.items(), reverse=True))),
                    census == expected,
                )
            )
    return rows


def test_fig1_exact_graph_dg23(benchmark, report):
    """The literal Figure-1 graph: directed and undirected DG(2, 3)."""
    result = benchmark(lambda: (structural_report(DeBruijnGraph(2, 3, True)),
                                structural_report(DeBruijnGraph(2, 3, False))))
    directed, undirected = result
    assert directed["order"] == 8 and directed["raw_arcs"] == 16
    assert directed["simple_edges"] == 14 and directed["self_loops"] == 2
    assert undirected["simple_edges"] == 13
    assert directed["diameter"] == 3 and undirected["diameter"] == 3
    report(format_table(
        ["graph", "N", "arcs(raw)", "edges", "loops", "diameter", "connected"],
        [
            ["DG(2,3) directed", directed["order"], directed["raw_arcs"],
             directed["simple_edges"], directed["self_loops"], directed["diameter"],
             directed["connected"]],
            ["DG(2,3) undirected", undirected["order"], undirected["raw_arcs"],
             undirected["simple_edges"], undirected["self_loops"], undirected["diameter"],
             undirected["connected"]],
        ],
    ))


def test_fig1_degree_census_grid(benchmark, report):
    """Degree census vs closed-form expectation over a (d, k) grid."""
    rows = benchmark(_census_rows)
    assert all(row[-1] for row in rows), "census formula mismatch"
    report("E1 / Figure 1 — degree census after removing redundant edges\n"
           + format_table(["d", "k", "orientation", "N", "edges", "census", "matches-formula"], rows))


def test_fig1_diameter_is_k(benchmark, report):
    """Paper Section 2 preamble: the diameter of DG(d, k) equals k."""
    from repro.graphs.properties import diameter

    def diameters():
        return [(d, k, o, diameter(DeBruijnGraph(d, k, directed=o)))
                for d, k in [(2, 3), (2, 5), (3, 3)] for o in (True, False)]

    rows = benchmark(diameters)
    assert all(value == k for _, k, _, value in rows)
    report("E1 — diameter check (paper: diameter(DG(d,k)) = k)\n"
           + format_table(["d", "k", "directed", "diameter"], rows))
