"""E21 — Route-query service: pipelined throughput, tail latency, overload.

Four measurements around :mod:`repro.service` (the asyncio route-query
server of this PR), all over real loopback TCP:

1. **Tier throughput** — a 10k-query pipelined burst on DG(2,12),
   answered first by the uncached planner tier (``cache_size=0``, every
   query replans via :func:`repro.core.routing.route`) and then by the
   O(1) compiled-table tier.  The table tier must be at least
   ``TABLE_SPEEDUP_MIN``x the planner's queries/sec: it replaces a full
   Algorithm-4 plan with two byte reads per query.
2. **Tail latency** — p50/p95/p99 per-request server-side latency from
   the ``server.latency_seconds`` histogram, fetched over a STATS frame
   (so the metrics path itself is exercised end to end).
3. **Concurrency sweep** — table-tier queries/sec as the client pool
   grows, documenting how pipelining shares one server loop.
4. **Workers sweep** — the same burst against a 1-worker and a
   min(4, cpus)-worker supervisor fleet (``SO_REUSEPORT``), recording
   total and per-worker qps; the scale-out bar is cpu-gated (explicit
   skip on 1-CPU hosts, never a silent pass).  The closed-loop
   capacity model lives in ``bench_capacity.py`` (E23).
5. **Overload + drain** — a window-0 slam against a server with a small
   admission queue: the bounded queue must reject the excess with
   explicit OVERLOADED replies (never buffer without bound), the server
   must still answer a STATS frame mid-overload, and ``stop()`` must
   drain every accepted query before the drain timeout.

Results are appended to ``BENCH_service.json`` at the repo root in the
:mod:`repro.benchio` envelope.  ``test_service_smoke`` runs the same
machinery on DG(2,8) for the CI smoke job (``make bench-smoke``).
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
import time
from typing import Dict, List, Optional, Tuple

import pytest

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.core.parallel import available_cpus, compile_table_buffers
from repro.core.routing import route
from repro.core.tables import CompiledRouteTable
from repro.core.word import Word, random_word
from repro.service.client import fetch_stats, run_burst
from repro.service.engine import EngineSpec, RouteQueryEngine
from repro.service.server import RouteQueryServer, ServerConfig
from repro.service.supervisor import SupervisorConfig, SupervisorThread

#: The measured graph: the same DG(2,12) the E18 table bench compiles.
GRAPH: Tuple[int, int] = (2, 12)
N_QUERIES = 10_000
POOL_SWEEP: Tuple[int, ...] = (1, 2, 4)
WINDOW = 256
SEED = 0xE21
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_service.json")

#: Acceptance bar: compiled-table lookups vs the uncached planner tier.
TABLE_SPEEDUP_MIN = 2.0

#: Overload scenario: admission bound and the slam size.
OVERLOAD_MAX_PENDING = 64
OVERLOAD_QUERIES = 4_000


class _LiveServer:
    """A route-query server on its own thread/loop, for sync callers.

    The benchmark body is synchronous (pytest-benchmark), so the server
    runs a private event loop in a daemon thread and the blocking client
    helpers talk to it over loopback TCP — the same deployment shape as
    the ``serve`` CLI subcommand.
    """

    def __init__(self, engine: RouteQueryEngine, **config_kwargs) -> None:
        self._ready = threading.Event()
        self.port: int = 0
        self.drain_seconds: Optional[float] = None
        self._config = ServerConfig(**config_kwargs)
        self._engine = engine
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("route-query server failed to start")

    def _run(self) -> None:
        async def _main() -> None:
            server = RouteQueryServer(self._engine, self._config)
            self.port = await server.start()
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._stop.wait()
            start = time.perf_counter()
            await server.stop()
            self.drain_seconds = time.perf_counter() - start

        asyncio.run(_main())

    def close(self) -> float:
        """Stop the server; returns how long the graceful drain took."""
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        assert self.drain_seconds is not None, "server thread did not exit"
        return self.drain_seconds


def _pairs(d: int, k: int, count: int, seed: int) -> List[Tuple[Word, Word]]:
    rng = random.Random(seed)
    return [(random_word(d, k, rng), random_word(d, k, rng))
            for _ in range(count)]


def _compile_table(d: int, k: int) -> CompiledRouteTable:
    dist, act = compile_table_buffers(d, k, directed=False,
                                      workers=min(4, available_cpus()))
    return CompiledRouteTable(d, k, False, bytes(act), bytes(dist))


def _measure_tier(engine: RouteQueryEngine, d: int,
                  pairs: List[Tuple[Word, Word]],
                  pool_size: int = 2, window: int = WINDOW,
                  ) -> Dict[str, float]:
    """One pipelined burst against a fresh server; qps + tail latency."""
    live = _LiveServer(engine)
    try:
        outcome = run_burst("127.0.0.1", live.port, pairs, d=d,
                            pool_size=pool_size, window=window)
        snapshot = fetch_stats("127.0.0.1", live.port)
    finally:
        drain = live.close()
    assert outcome.ok_count == len(pairs), (
        f"burst lost replies: {outcome.ok_count}/{len(pairs)} "
        f"(errors: {outcome.error_counts})"
    )
    latency = snapshot["histograms"]["server.latency_seconds"]
    return {
        "queries": len(pairs),
        "pool_size": pool_size,
        "window": window,
        "workers": 1,
        "qps": outcome.qps,
        "per_worker_qps": outcome.qps,
        "elapsed_seconds": outcome.elapsed,
        "p50_ms": latency["p50"] * 1e3,
        "p95_ms": latency["p95"] * 1e3,
        "p99_ms": latency["p99"] * 1e3,
        "drain_seconds": drain,
    }


def _measure_fleet(spec: EngineSpec, d: int,
                   pairs: List[Tuple[Word, Word]], workers: int,
                   pool_size: int = 4, window: int = WINDOW,
                   ) -> Dict[str, object]:
    """One pipelined burst against a ``workers``-process fleet."""
    with SupervisorThread(spec, SupervisorConfig(workers=workers)) as live:
        outcome = run_burst("127.0.0.1", live.port, pairs, d=d,
                            pool_size=pool_size, window=window, reconnect=2)
        snapshot = fetch_stats("127.0.0.1", live.port)
    assert outcome.ok_count == len(pairs), (
        f"fleet burst lost replies: {outcome.ok_count}/{len(pairs)} "
        f"(errors: {outcome.error_counts})"
    )
    fleet = snapshot["fleet"]
    assert fleet["workers"] == workers
    latency = snapshot["histograms"]["server.latency_seconds"]
    return {
        "queries": len(pairs),
        "pool_size": pool_size,
        "window": window,
        "workers": workers,
        "listener": fleet["listener"],
        "qps": outcome.qps,
        "per_worker_qps": outcome.qps / workers,
        "per_worker_queries": [row["queries"] for row in
                               fleet["per_worker"]],
        "elapsed_seconds": outcome.elapsed,
        "p50_ms": latency["p50"] * 1e3,
        "p95_ms": latency["p95"] * 1e3,
        "p99_ms": latency["p99"] * 1e3,
    }


def _measure_overload(d: int, k: int,
                      table: Optional[CompiledRouteTable] = None,
                      queries: int = OVERLOAD_QUERIES,
                      max_pending: int = OVERLOAD_MAX_PENDING,
                      ) -> Dict[str, float]:
    """Window-0 slam against a tiny admission queue.

    Every query is either answered or explicitly rejected — the bounded
    queue converts overload into backpressure, not into memory growth —
    and the server keeps answering STATS frames throughout.
    """
    engine = RouteQueryEngine(d, k, table=table)
    live = _LiveServer(engine, max_pending=max_pending,
                       drain_timeout=30.0)
    try:
        pairs = _pairs(d, k, queries, SEED + 1)
        outcome = run_burst("127.0.0.1", live.port, pairs, d=d,
                            pool_size=1, window=0)
        snapshot = fetch_stats("127.0.0.1", live.port)  # still responsive
    finally:
        drain = live.close()
    counters = snapshot["counters"]
    rejected = outcome.error_counts.get("OVERLOADED", 0)
    assert outcome.ok_count + rejected == queries, (
        f"overload lost queries: {outcome.ok_count} ok + {rejected} "
        f"rejected != {queries} (errors: {outcome.error_counts})"
    )
    assert counters["server.queue_peak"] <= max_pending, (
        f"admission queue exceeded its bound: peak "
        f"{counters['server.queue_peak']} > {max_pending}"
    )
    assert counters["server.queue_depth"] == 0, "drain left queued work"
    return {
        "queries": queries,
        "max_pending": max_pending,
        "answered": outcome.ok_count,
        "rejected_overload": rejected,
        "queue_peak": counters["server.queue_peak"],
        "drain_seconds": drain,
    }


def test_service(benchmark, report, tmp_path):
    """The full E21 measurement; writes BENCH_service.json."""
    d, k = GRAPH

    def measure() -> Dict[str, object]:
        record: Dict[str, object] = {
            "graph": {"d": d, "k": k, "n": d**k},
            "cpus": available_cpus(),
        }
        start = time.perf_counter()
        table = _compile_table(d, k)
        record["table_compile_seconds"] = time.perf_counter() - start
        pairs = _pairs(d, k, N_QUERIES, SEED)
        record["planner_uncached"] = _measure_tier(
            RouteQueryEngine(d, k, cache_size=0), d, pairs)
        record["table"] = _measure_tier(
            RouteQueryEngine(d, k, table=table), d, pairs)
        record["table_speedup"] = (record["table"]["qps"]
                                   / record["planner_uncached"]["qps"])
        record["pool_sweep"] = [
            _measure_tier(RouteQueryEngine(d, k, table=table), d, pairs,
                          pool_size=pool)
            for pool in POOL_SWEEP
        ]
        # The workers axis: every fleet worker mmap-loads this one file,
        # so the table bytes exist once in the page cache host-wide.
        table_path = str(tmp_path / "service.routes")
        table.save(table_path)
        spec = EngineSpec(d, k, table_path=table_path)
        fleet_sizes = sorted({1, min(4, max(1, available_cpus()))})
        record["workers_sweep"] = [
            _measure_fleet(spec, d, pairs, workers) for workers in fleet_sizes
        ]
        by_workers = {row["workers"]: row for row in record["workers_sweep"]}
        top = max(by_workers)
        record["scaleout_speedup"] = (
            by_workers[top]["qps"] / by_workers[1]["qps"]
        )
        record["scaleout_workers"] = top
        record["overload"] = _measure_overload(d, k, table=table)
        return record

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    append_record(JSON_PATH, record, bench="service")

    planner, table = record["planner_uncached"], record["table"]
    report(f"E21 — DG({d},{k}) route-query service, {N_QUERIES} pipelined "
           f"queries ({record['cpus']} CPU(s))\n"
           + format_table(
               ["tier", "qps", "p50 ms", "p95 ms", "p99 ms"],
               [["planner (uncached)", planner["qps"], planner["p50_ms"],
                 planner["p95_ms"], planner["p99_ms"]],
                ["compiled table", table["qps"], table["p50_ms"],
                 table["p95_ms"], table["p99_ms"]]], precision=2)
           + f"\ntable speedup: {record['table_speedup']:.2f}x "
           f"(bar: >= {TABLE_SPEEDUP_MIN}x)")
    report("E21 — table-tier qps vs client pool size\n"
           + format_table(
               ["pool", "qps", "p99 ms"],
               [[row["pool_size"], row["qps"], row["p99_ms"]]
                for row in record["pool_sweep"]], precision=2))
    report("E21 — table-tier qps vs worker processes (burst)\n"
           + format_table(
               ["workers", "qps", "qps/worker", "p99 ms"],
               [[row["workers"], row["qps"], row["per_worker_qps"],
                 row["p99_ms"]]
                for row in record["workers_sweep"]], precision=2))
    over = record["overload"]
    report("E21 — overload: window-0 slam vs bounded admission queue\n"
           + format_kv_block(
               f"{over['queries']} queries, queue bound "
               f"{over['max_pending']}", [
                   ("answered", over["answered"]),
                   ("rejected OVERLOADED", over["rejected_overload"]),
                   ("queue peak", over["queue_peak"]),
                   ("drain seconds", round(over["drain_seconds"], 4)),
               ]))

    # Acceptance 1: O(1) table lookups must beat replanning every query
    # by at least TABLE_SPEEDUP_MIN x on the pipelined burst.
    assert record["table_speedup"] >= TABLE_SPEEDUP_MIN, (
        f"table tier only {record['table_speedup']:.2f}x the uncached "
        f"planner (bar: {TABLE_SPEEDUP_MIN}x)"
    )
    # Acceptance 2: the overload run (asserted inside _measure_overload)
    # rejected at least something — otherwise the slam never actually
    # pressured the queue and the scenario proved nothing.
    assert over["rejected_overload"] > 0, (
        "overload scenario produced no rejections; queue was never full"
    )
    # Acceptance 3: graceful drain completed well under its timeout.
    assert over["drain_seconds"] < 30.0
    # Acceptance 4: multi-worker scale-out — only meaningful where the
    # workers can actually run in parallel.  On a 1-CPU container the
    # sweep still runs and the record is already written; the bar is an
    # explicit SKIP in the test report, never a silent pass (the same
    # pattern as the E18 parallel-compile bar).
    if record["cpus"] < 2 or record["scaleout_workers"] < 2:
        pytest.skip(
            f"{record['cpus']} CPU(s) available; the multi-worker "
            f"scale-out bar requires >= 2 CPUs"
        )
    assert record["scaleout_speedup"] >= 1.3, (
        f"{record['scaleout_workers']}-worker burst only "
        f"{record['scaleout_speedup']:.2f}x one worker on a "
        f"{record['cpus']}-CPU machine"
    )


@pytest.mark.smoke
def test_service_smoke():
    """Fast CI smoke: both tiers correct on DG(2,8), overload bounded."""
    d, k = 2, 8
    table = _compile_table(d, k)
    pairs = _pairs(d, k, 300, SEED)

    for engine in (RouteQueryEngine(d, k, cache_size=0),
                   RouteQueryEngine(d, k, table=table)):
        live = _LiveServer(engine)
        try:
            outcome = run_burst("127.0.0.1", live.port, pairs, d=d,
                                pool_size=2, window=64)
            snapshot = fetch_stats("127.0.0.1", live.port)
        finally:
            live.close()
        assert outcome.ok_count == len(pairs)
        assert snapshot["counters"]["server.replies"] == len(pairs)
        assert snapshot["histograms"]["server.latency_seconds"]["p99"] > 0

    # Replies match the library oracle on a sample.
    live = _LiveServer(RouteQueryEngine(d, k, table=table))
    try:
        sample = pairs[:40]
        outcome = run_burst("127.0.0.1", live.port, sample, d=d)
    finally:
        live.close()
    for (x, y), reply in zip(sample, outcome.replies):
        expected = route(x, y, d=d)
        assert reply.distance == len(expected)
        assert len(reply.path) == len(expected)

    # Overload stays bounded and drains cleanly even at smoke scale.
    over = _measure_overload(d, k, table=table, queries=800, max_pending=16)
    assert over["rejected_overload"] > 0
    assert over["answered"] + over["rejected_overload"] == 800
