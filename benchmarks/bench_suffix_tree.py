"""E15 (extension) — substrate scaling: Ukkonen vs naive suffix trees.

The paper leans on Weiner's linear-time prefix-tree construction; our
substitute is Ukkonen's algorithm.  This bench validates the substitution
quantitatively: construction time scales ~linearly in the text length
while the naive builder goes quadratic, and the compact node count stays
within the 2(n+1) bound the paper's O(n)-space claim needs.
"""

from __future__ import annotations

import math
import random
import time

import pytest

from repro.analysis.tables import format_table
from repro.core.suffix_tree import SuffixTree, build_naive

LENGTHS = (128, 256, 512, 1024, 2048)


def _random_text(n: int, alphabet: int = 2) -> tuple:
    rng = random.Random(n)
    return tuple(rng.randrange(alphabet) for _ in range(n))


@pytest.mark.parametrize("n", LENGTHS)
def test_ukkonen_time_at_n(benchmark, n):
    text = _random_text(n)
    tree = benchmark(SuffixTree, text)
    assert tree.leaf_count() == n + 1


def _best_of(fn, arg, repeats=3):
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return best


def test_construction_scaling_exponents(benchmark, report):
    """Slope fit: Ukkonen ~1, naive ~2 (on periodic worst-ish input)."""

    def sweep():
        rows = []
        for n in LENGTHS:
            # Highly repetitive text stresses the naive builder hardest.
            text = tuple((i // 2) % 2 for i in range(n))
            rows.append((n, _best_of(SuffixTree, text),
                         _best_of(build_naive, text) if n <= 1024 else float("nan")))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    xs = [math.log(n) for n, _, _ in rows]
    ys = [math.log(t) for _, t, _ in rows]
    mean_x, mean_y = sum(xs) / len(xs), sum(ys) / len(ys)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
        (x - mean_x) ** 2 for x in xs
    )
    naive_pts = [(n, t) for n, _, t in rows if not math.isnan(t)]
    nxs = [math.log(n) for n, _ in naive_pts]
    nys = [math.log(t) for _, t in naive_pts]
    nmx, nmy = sum(nxs) / len(nxs), sum(nys) / len(nys)
    naive_slope = sum((x - nmx) * (y - nmy) for x, y in zip(nxs, nys)) / sum(
        (x - nmx) ** 2 for x in nxs
    )
    assert slope < 1.45  # Ukkonen: ~linear (log-factor slack allowed)
    assert naive_slope > 1.7  # naive: ~quadratic on repetitive input
    display = [(n, f"{u * 1e3:.2f}ms", "-" if math.isnan(v) else f"{v * 1e3:.2f}ms")
               for n, u, v in rows]
    report("E15 (extension) — suffix tree construction scaling (repetitive text)\n"
           + format_table(["n", "Ukkonen", "naive"], display)
           + f"\nfitted exponents: Ukkonen {slope:.2f} (paper needs O(n)), "
             f"naive {naive_slope:.2f}.")


def test_node_count_stays_linear(benchmark, report):
    """The O(n) space claim: nodes <= 2(n+1) on random and adversarial text."""

    def check():
        rows = []
        for n in (64, 256, 1024):
            for label, text in [
                ("random", _random_text(n)),
                ("constant", (0,) * n),
                ("fibonacci-ish", tuple((i * 2 // 3) % 2 for i in range(n))),
            ]:
                tree = SuffixTree(text)
                rows.append((label, n, tree.node_count(), 2 * (n + 1)))
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    for _, n, nodes, bound in rows:
        assert nodes <= bound
    report("E15 — compact tree node counts vs the 2(n+1) bound\n"
           + format_table(["text", "n", "nodes", "bound"], rows))
