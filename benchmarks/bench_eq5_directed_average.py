"""E2 — Equation (5): average distance of the directed de Bruijn graph.

The paper derives δ(d, k) = k − (1 − α^k)·α/(1 − α) with α = 1/d, and in
particular δ(2, k) = k − 1 + 1/2^k.  This bench regenerates the closed
form next to the *exact* all-pairs mean and reports the gap.

Reproduction finding: the closed form is an upper-bound approximation —
the model treats "overlap >= s" as a single digit-equality event, but a
long overlap does not require shorter ones, so real distances average
slightly lower.  The gap approaches α/ᾱ − something small; it is bounded
by one hop at every size measured and vanishes as d grows.
"""

from __future__ import annotations

import random

from repro.analysis.distributions import eq5_comparison_rows
from repro.analysis.tables import format_table
from repro.core.average_distance import (
    directed_average_distance_closed_form,
    directed_average_distance_sampled,
)

D_VALUES = (2, 3, 4, 5)
K_MAX = 9


def test_eq5_exact_vs_closed_form(benchmark, report):
    """Closed form vs exact mean over every ordered pair (vectorised)."""
    rows = benchmark(eq5_comparison_rows, D_VALUES, K_MAX)
    for d, k, closed, measured, gap in rows:
        if d == 2:
            assert abs(closed - (k - 1 + 0.5**k)) < 1e-12
        assert gap >= -1e-12
        assert gap < 1.0
        if k >= 2:
            assert gap > 0.0  # (5) strictly overestimates for k >= 2
    report("E2 / Equation (5) — directed average distance δ(d, k)\n"
           + format_table(["d", "k", "eq(5) closed form", "exact mean", "gap (closed-exact)"], rows)
           + "\npaper claim: δ(2,k) = k - 1 + 1/2^k   [closed form reproduced exactly]"
           + "\nfinding:     eq(5) is an upper bound; exact mean is lower by < 1 hop.")


def test_eq5_ball_size_explanation(benchmark, report):
    """Why (5) overestimates: real reachability balls beat the model's d^t."""
    from repro.analysis.balls import ball_deficit_rows

    rows = benchmark(ball_deficit_rows, 2, 6)
    for t, mean, model, ratio in rows:
        assert mean >= model - 1e-9
        if 0 < t < 6:
            assert ratio > 1.0
    report("E2 (explanation) — mean out-ball sizes on DG(2,6) vs the eq(5) model\n"
           + format_table(["radius t", "mean |ball_t|", "model d^t", "ratio"], rows)
           + "\nreal balls exceed d^t at every interior radius (reach sets collide"
           "\nacross radii), so vertices sit closer than the geometric model claims.")


def test_eq5_sampled_large_k(benchmark, report):
    """Sampled means for k far beyond enumerable sizes (shape check)."""

    def sample():
        rows = []
        for d, k in [(2, 12), (2, 16), (2, 24), (3, 10), (4, 8)]:
            closed = directed_average_distance_closed_form(d, k)
            sampled = directed_average_distance_sampled(d, k, samples=2000, rng=random.Random(k * d))
            rows.append((d, k, closed, sampled, closed - sampled))
        return rows

    rows = benchmark(sample)
    for _, k, closed, sampled, gap in rows:
        assert abs(gap) < 1.0  # the bound persists at large k
        assert sampled > k - 2  # mean stays within two hops of the diameter
    report("E2 (extension) — sampled directed means at large k\n"
           + format_table(["d", "k", "eq(5)", "sampled mean", "gap"], rows))
