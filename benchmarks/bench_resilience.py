"""E19 — chaos engine: fault injection vs the resilience stack.

The robustness experiment the paper's Section 5 fault-tolerance claims
point at, run end to end: a seeded chaos campaign (site churn with
exponential MTBF/MTTR, correlated regional outages, Bernoulli link
loss) sweeps fault intensity over four routing strategies —

* ``oblivious``  — compiled-table routing, drop on any failed next hop;
* ``reroute``    — omniscient BFS re-plan around the failed set (E7);
* ``detour``     — local-knowledge deflection bounded to d-1
  alternatives (:class:`repro.network.resilience.LocalDetourPolicy`);
* ``repair``     — self-healing route table patched incrementally on
  every fault transition.

Asserted: detour and repair deliver strictly more than oblivious at
every nonzero intensity, and the incremental repair is byte-identical
to a full recompile while rewriting only the rows a failure actually
invalidated.  Results append to ``BENCH_resilience.json`` (benchio
envelope) so the curves are tracked over time.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List

from repro.analysis.tables import format_kv_block, format_table
from repro.benchio import append_record
from repro.core.tables import CompiledRouteTable
from repro.network.chaos import ChaosConfig, campaign_curves, run_campaign
from repro.network.resilience import compile_with_failures, repair_route_table

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_resilience.json")

GRAPH = (2, 6)
INTENSITIES = (0.0, 0.25, 0.5, 1.0)
CAMPAIGN = ChaosConfig(
    d=GRAPH[0], k=GRAPH[1], seed="bench-e19", horizon=3000.0,
    messages=300, spacing=5.0, mtbf=600.0, mttr=120.0,
    loss_rate=0.05, regional_rate=0.0005, region_prefix_len=2,
)

REPAIR_GRAPH = (2, 7)
FAULT_COUNTS = (1, 2, 4, 8)


def test_resilience_campaign(benchmark, report):
    """The E19 sweep; writes BENCH_resilience.json."""

    def measure() -> List[Dict[str, object]]:
        return run_campaign(CAMPAIGN, INTENSITIES)

    records = benchmark.pedantic(measure, rounds=1, iterations=1)
    by_key = {(r["strategy"], r["intensity"]): r for r in records}

    for intensity in INTENSITIES:
        floor = by_key[("oblivious", intensity)]["delivery_ratio"]
        if intensity == 0.0:
            # The fault-free control: every strategy is lossless.
            for strategy in ("oblivious", "reroute", "detour", "repair"):
                assert by_key[(strategy, intensity)]["delivery_ratio"] == 1.0
            continue
        assert floor < 1.0  # the chaos actually bites at this intensity
        for strategy in ("detour", "repair"):
            ratio = by_key[(strategy, intensity)]["delivery_ratio"]
            assert ratio > floor, (
                f"{strategy} must beat oblivious at intensity {intensity}: "
                f"{ratio:.3f} vs {floor:.3f}")
    assert by_key[("detour", 1.0)]["detoured"] > 0
    assert by_key[("repair", 1.0)]["table_repairs"] > 0

    record: Dict[str, object] = {
        "graph": {"d": CAMPAIGN.d, "k": CAMPAIGN.k,
                  "n": CAMPAIGN.d ** CAMPAIGN.k},
        "config": {
            "seed": CAMPAIGN.seed, "horizon": CAMPAIGN.horizon,
            "messages": CAMPAIGN.messages, "mtbf": CAMPAIGN.mtbf,
            "mttr": CAMPAIGN.mttr, "loss_rate": CAMPAIGN.loss_rate,
            "regional_rate": CAMPAIGN.regional_rate,
        },
        "campaign": records,
    }
    append_record(JSON_PATH, record, bench="resilience")

    rows = [(r["strategy"], r["intensity"], r["delivery_ratio"],
             r["mean_stretch"], r["time_to_recover"], r["detoured"],
             r["table_repairs"], r["link_lost"])
            for r in records]
    report(f"E19 — chaos campaign on DG{GRAPH}, seed {CAMPAIGN.seed!r}\n"
           + format_table(
               ["strategy", "intensity", "delivery ratio", "stretch",
                "time to recover", "detoured", "repairs", "link lost"],
               rows, precision=3)
           + "\ndetour and repair beat drop-on-failure at every nonzero "
             "intensity; the campaign replays exactly from its seed.")
    curves = campaign_curves(records)
    report("E19 — delivery-ratio curves (intensity -> ratio)\n"
           + format_kv_block("per strategy", [
               (name, "  ".join(f"{i:.2f}:{r:.3f}" for i, r in points))
               for name, points in sorted(curves.items())]))


def test_incremental_repair_vs_full_recompile(benchmark, report):
    """Byte-identity plus the work saved by repairing in place."""
    d, k = REPAIR_GRAPH
    table = CompiledRouteTable.compile(d, k, workers=1)
    n = table.order
    rng = random.Random("bench-e19-repair")

    def measure():
        rows = []
        for fault_count in FAULT_COUNTS:
            failed = rng.sample(range(n), fault_count)
            patched = table.thaw()
            start = time.perf_counter()
            outcome = repair_route_table(patched, failed)
            repair_seconds = time.perf_counter() - start
            start = time.perf_counter()
            reference = compile_with_failures(d, k, False, failed)
            full_seconds = time.perf_counter() - start
            identical = (
                bytes(patched.actions) == bytes(reference.actions)
                and bytes(patched.distances) == bytes(reference.distances))
            rows.append({
                "fault_count": fault_count,
                "repair_seconds": repair_seconds,
                "full_seconds": full_seconds,
                "speedup": full_seconds / repair_seconds,
                "rows_rewritten": outcome.rows_rewritten,
                "rows_untouched": outcome.rows_untouched,
                "rows_patched_only": outcome.rows_patched,
                "identical": identical,
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for row in rows:
        assert row["identical"], (
            f"repair diverged from full recompile at "
            f"{row['fault_count']} faults")
        assert row["rows_rewritten"] <= n

    append_record(JSON_PATH, {
        "graph": {"d": d, "k": k, "n": n},
        "repair": rows,
    }, bench="resilience_repair")

    report(f"E19 — incremental repair vs full recompile on DG({d},{k}) "
           f"(N={n} rows)\n"
           + format_table(
               ["faults", "repair s", "recompile s", "speedup",
                "rows re-BFS'd", "cells-only", "untouched"],
               [[r["fault_count"], r["repair_seconds"], r["full_seconds"],
                 r["speedup"], r["rows_rewritten"] - r["rows_patched_only"],
                 r["rows_patched_only"], r["rows_untouched"]]
                for r in rows], precision=3)
           + "\nevery repaired table is byte-identical to the recompile; "
             "the patched/untouched rows are the work saved.")


def test_chaos_campaign_smoke(benchmark):
    """Tiny seeded campaign: reproducible and strictly ordered (CI-fast)."""
    config = ChaosConfig(d=2, k=4, seed="bench-smoke", horizon=600.0,
                         messages=60, spacing=5.0, mtbf=150.0, mttr=50.0,
                         loss_rate=0.05)

    def run():
        return run_campaign(config, intensities=(0.0, 1.0),
                            strategies=("oblivious", "repair"))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    by_key = {(r["strategy"], r["intensity"]): r for r in records}
    assert by_key[("oblivious", 0.0)]["delivery_ratio"] == 1.0
    assert (by_key[("repair", 1.0)]["delivery_ratio"]
            > by_key[("oblivious", 1.0)]["delivery_ratio"])
