"""E8 (extension) — de Bruijn vs Kautz vs generalized de Bruijn.

Beyond the paper's artifacts: quantifies the "nearly optimal" claim the
paper makes via Imase–Itoh [4].  Compares, at equal out-degree and
diameter, the vertex counts against the directed Moore bound, and shows
that the Property-1 style O(k) routing rule of this library extends to
both sibling families (Kautz words, modular GDB arithmetic) with the same
zero-table cost.
"""

from __future__ import annotations

import random
from collections import deque

from repro.analysis.moore import asymptotic_efficiency, comparison_rows
from repro.analysis.tables import format_table
from repro.graphs.generalized import GeneralizedDeBruijnGraph
from repro.graphs.kautz import KautzGraph


def test_moore_bound_table(benchmark, report):
    """Vertex counts vs the Moore bound at matched degree/diameter."""

    def build():
        rows = []
        for d, k in [(2, 4), (2, 8), (3, 4), (4, 4), (2, 16)]:
            for row in comparison_rows(d, k):
                rows.append((row.family, d, k, row.order, row.moore_bound, row.efficiency))
        return rows

    rows = benchmark(build)
    for family, d, _, order, bound, eff in rows:
        assert order <= bound
        if family.startswith("de Bruijn"):
            assert eff >= asymptotic_efficiency(d) - 1e-9
    report("E8 (extension) — degree/diameter efficiency vs the Moore bound\n"
           + format_table(["family", "degree", "diameter", "vertices", "Moore bound",
                           "fraction achieved"], rows)
           + "\nde Bruijn -> (d-1)/d of the bound; Kautz -> (d^2-1)/d^2: 'nearly optimal'.")


def test_kautz_routing_all_pairs(benchmark, report):
    """Property 1 transfers to K(2, 5): formula == BFS on all pairs."""
    graph = KautzGraph(2, 5)  # 48 vertices

    def verify():
        mismatches = 0
        pairs = 0
        vertices = list(graph.vertices())
        for x in vertices:
            oracle = {x: 0}
            queue = deque([x])
            while queue:
                u = queue.popleft()
                for v in graph.out_neighbors(u):
                    if v not in oracle:
                        oracle[v] = oracle[u] + 1
                        queue.append(v)
            for y in vertices:
                pairs += 1
                if graph.distance(x, y) != oracle[y]:
                    mismatches += 1
                digits = graph.route(x, y)
                if graph.apply_route(x, digits) != y or len(digits) != oracle[y]:
                    mismatches += 1
        return pairs, mismatches

    pairs, mismatches = benchmark(verify)
    assert mismatches == 0
    report(f"E8 — Kautz K(2,5): {pairs} ordered pairs, {mismatches} mismatches "
           "(Property-1 distance + spelled routes vs BFS)")


def test_gdb_routing_odd_sizes(benchmark, report):
    """The modular routing rule on non-power vertex counts."""

    def verify():
        rows = []
        rng = random.Random(11)
        for n, d in [(100, 2), (1000, 2), (729, 3), (500, 3), (97, 4)]:
            graph = GeneralizedDeBruijnGraph(n, d)
            worst = 0
            checked = 0
            for _ in range(400):
                u, v = rng.randrange(n), rng.randrange(n)
                digits = graph.route(u, v)
                assert graph.apply_route(u, digits) == v
                worst = max(worst, len(digits))
                checked += 1
            rows.append((n, d, graph.diameter_bound(), worst, checked))
        return rows

    rows = benchmark(verify)
    for _, _, bound, worst, _ in rows:
        assert worst <= bound
    report("E8 — generalized de Bruijn GDB(n, d): table-free routing at any size\n"
           + format_table(["n", "d", "diameter bound ceil(log_d n)", "worst route sampled",
                           "pairs checked"], rows))
