#!/usr/bin/env python3
"""Serve route queries over TCP and drive the server with a pipelined client.

Walks through the whole E21 service stack in-process:

1. boot an asyncio :class:`RouteQueryServer` on an ephemeral port,
   first on the planner tier and then with a compiled DG(2, 8) table;
2. ask single queries and fire a pipelined burst through the pooled
   :class:`RouteServiceClient`;
3. read the metrics registry over a ``STATS`` frame (tier counters,
   p50/p95/p99 latency);
4. slam a server with a tiny admission queue to show bounded-queue
   backpressure: excess queries get explicit ``OVERLOADED`` replies and
   the graceful drain still answers everything it accepted.

Run:  python examples/serve_queries.py
"""

import asyncio
import random

from repro.analysis.tables import format_kv_block
from repro.core.routing import format_path
from repro.core.tables import CompiledRouteTable
from repro.core.word import random_word
from repro.service.client import RouteServiceClient
from repro.service.engine import RouteQueryEngine
from repro.service.server import RouteQueryServer, ServerConfig

D, K = 2, 8


def pairs(count, seed):
    rng = random.Random(seed)
    return [(random_word(D, K, rng), random_word(D, K, rng))
            for _ in range(count)]


async def tier_demo(engine, label, burst):
    """One server lifetime: single query, pipelined burst, stats."""
    async with RouteQueryServer(engine) as server:
        async with RouteServiceClient("127.0.0.1", server.port, d=D,
                                      pool_size=2) as client:
            source, destination = (0, 0, 1, 1, 0, 1, 0, 1), (1, 1, 1, 0, 0, 0, 1, 0)
            reply = await client.query(source, destination)
            print(f"[{label}] {''.join(map(str, source))} -> "
                  f"{''.join(map(str, destination))}: distance "
                  f"{reply.distance}, path {format_path(reply.path)}")

            outcome = await client.query_many(burst, want_path=False,
                                              window=128)
            snapshot = await client.stats()
        latency = snapshot["histograms"]["server.latency_seconds"]
        counters = snapshot["counters"]
        print(format_kv_block(f"{label}: {len(burst)} pipelined queries", [
            ("replies ok", outcome.ok_count),
            ("queries/sec", round(outcome.qps, 1)),
            ("p50 latency (ms)", round(latency["p50"] * 1e3, 3)),
            ("p99 latency (ms)", round(latency["p99"] * 1e3, 3)),
            ("table lookups", counters.get("engine.table_lookups", 0)),
            ("planner plans", counters.get("engine.planned", 0)),
            ("batched (coalesced)", counters.get("engine.batched", 0)),
        ]))
        print()


async def overload_demo(burst):
    """A 16-slot admission queue under a window-0 slam."""
    engine = RouteQueryEngine(D, K)
    config = ServerConfig(max_pending=16)
    async with RouteQueryServer(engine, config) as server:
        async with RouteServiceClient("127.0.0.1", server.port, d=D) as client:
            outcome = await client.query_many(burst, window=0)
            snapshot = await client.stats()
    rejected = outcome.error_counts.get("OVERLOADED", 0)
    print(format_kv_block(
        f"overload: {len(burst)} queries vs queue bound 16", [
            ("answered", outcome.ok_count),
            ("rejected OVERLOADED", rejected),
            ("queue peak", snapshot["counters"]["server.queue_peak"]),
        ]))
    assert outcome.ok_count + rejected == len(burst), "a query went missing"


async def main():
    burst = pairs(2000, seed=21)

    await tier_demo(RouteQueryEngine(D, K), "planner tier", burst)

    table = CompiledRouteTable.compile(D, K, directed=False)
    await tier_demo(RouteQueryEngine(D, K, table=table),
                    "compiled-table tier", burst)

    await overload_demo(pairs(1500, seed=22))


if __name__ == "__main__":
    asyncio.run(main())
