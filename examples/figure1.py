#!/usr/bin/env python3
"""Regenerate the paper's Figure 1: the de Bruijn graphs DG(2, 3).

Prints both orientations as adjacency listings in the paper's notation,
verifies the structural facts stated around the figure, and emits DOT
sources ready for `dot -Tpng` next to this script.

Run:  python examples/figure1.py [--write-dot]
"""

import sys

from repro.analysis.dot import graph_to_dot
from repro.analysis.tables import format_table
from repro.core.word import format_word
from repro.graphs.debruijn import directed_graph, undirected_graph
from repro.graphs.properties import degree_census, diameter


def adjacency_listing(graph) -> None:
    rows = []
    for vertex in graph.vertices():
        if graph.directed:
            outs = sorted(graph.out_neighbors(vertex))
            rows.append((
                format_word(vertex),
                " ".join(format_word(w) for w in outs),
                " ".join(format_word(w) for w in sorted(graph.in_neighbors(vertex))),
            ))
        else:
            rows.append((
                format_word(vertex),
                " ".join(format_word(w) for w in sorted(graph.neighbors(vertex))),
                graph.degree(vertex),
            ))
    if graph.directed:
        print(format_table(["X", "X^-(a) (type-L out)", "X^+(a) (type-R in)"], rows))
    else:
        print(format_table(["X", "neighbors", "degree"], rows))


def main() -> None:
    print("Figure 1(a): directed DG(2, 3)")
    directed = directed_graph(2, 3)
    adjacency_listing(directed)
    print(f"\n  N = {directed.order}, raw arcs = 16, simple arcs = {directed.size()},"
          f" diameter = {diameter(directed)}")
    print(f"  degree census: {degree_census(directed)}  "
          "(paper: N-d of degree 2d, d of degree 2d-2)")

    print("\nFigure 1(b): undirected DG(2, 3)")
    undirected = undirected_graph(2, 3)
    adjacency_listing(undirected)
    print(f"\n  simple edges = {undirected.size()}, diameter = {diameter(undirected)}")
    print(f"  degree census: {degree_census(undirected)}  "
          "(corrected: N-d² of 2d, d²-d of 2d-1, d of 2d-2)")

    if "--write-dot" in sys.argv:
        for graph, name in ((directed, "figure1a_directed"), (undirected, "figure1b_undirected")):
            path = f"{name}.dot"
            with open(path, "w") as handle:
                handle.write(graph_to_dot(graph, name=name))
            print(f"wrote {path}")
    else:
        print("\n(pass --write-dot to emit Graphviz sources)")


if __name__ == "__main__":
    main()
