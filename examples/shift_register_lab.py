#!/usr/bin/env python3
"""Shift-register lab: the paper's own model of the de Bruijn graph.

The paper introduces DG(d, k) as "the state graph of a shift register of
length k".  This example walks that correspondence end to end:

1. find primitive feedback polynomials over GF(2),
2. run the LFSR and watch its states trace left-shift edges of DG(2, k),
3. produce the m-sequence and upgrade it to a full de Bruijn sequence,
4. cross-check against the FKM construction, and
5. sketch the graph (with the LFSR orbit highlighted) as Graphviz DOT.

Run:  python examples/shift_register_lab.py
"""

from repro.analysis.dot import graph_to_dot
from repro.core.word import format_word, left_shift
from repro.graphs.debruijn import directed_graph
from repro.graphs.sequences import debruijn_sequence_lyndon, is_debruijn_sequence, windows
from repro.graphs.shift_register import (
    LFSR,
    debruijn_from_m_sequence,
    m_sequence,
    primitive_polynomials,
)

K = 4


def polynomial_str(poly: int) -> str:
    terms = [f"x^{i}" if i > 1 else ("x" if i == 1 else "1")
             for i in range(poly.bit_length() - 1, -1, -1) if (poly >> i) & 1]
    return " + ".join(terms)


def main() -> None:
    polys = primitive_polynomials(K)
    print(f"primitive polynomials of degree {K} over GF(2):")
    for poly in polys:
        print(f"  {poly:#07b}  =  {polynomial_str(poly)}")
    taps = polys[0]

    print(f"\nLFSR with feedback {polynomial_str(taps)}, seeded 0001:")
    register = LFSR(taps, (0,) * (K - 1) + (1,))
    state = register.state
    for step in range(8):
        incoming = register.feedback()
        nxt = register.step()
        assert nxt == left_shift(state, incoming)
        print(f"  {format_word(state)} --L{incoming}--> {format_word(nxt)}")
        state = nxt
    print(f"  ... period {LFSR(taps, (0,) * (K - 1) + (1,)).period()} "
          f"= 2^{K} - 1 (all nonzero states)")

    seq = m_sequence(taps)
    print(f"\nm-sequence ({len(seq)} digits): {format_word(seq)}")
    full = debruijn_from_m_sequence(taps)
    print(f"with one 0 inserted      : {format_word(full)}")
    assert is_debruijn_sequence(full, 2, K)
    fkm = debruijn_sequence_lyndon(2, K)
    assert set(windows(full, K)) == set(windows(fkm, K))
    print(f"FKM construction for B(2,{K}): {format_word(fkm)}")
    print("both cover every window exactly once (different representatives).")

    orbit = [(0,) * (K - 1) + (1,)]
    register = LFSR(taps, orbit[0])
    for _ in range(2**K - 2):
        orbit.append(register.step())
    dot = graph_to_dot(directed_graph(2, 3))
    print(f"\nGraphviz DOT of DG(2,3) ({len(dot.splitlines())} lines) — "
          "pipe examples output into `dot -Tpng`:")
    print("\n".join(dot.splitlines()[:6]) + "\n  ...")


if __name__ == "__main__":
    main()
