#!/usr/bin/env python3
"""Koorde: the de Bruijn network reborn as a distributed hash table.

Thirteen years after the paper, Kaashoek & Karger built Koorde by putting
peers on the 2^b identifier ring and routing lookups with exactly the
paper's left-shift walk — on an *imaginary* de Bruijn address that detours
along ring successors wherever no real node exists.  Two pointers per
node, O(log N) hops.

This example builds a small ring, dissects one lookup hop by hop, and
compares Koorde's constant state against a Chord baseline.

Run:  python examples/koorde_dht.py
"""

import random

from repro.analysis.tables import format_table
from repro.dht.chord import ChordRing
from repro.dht.koorde import KoordeRing

BITS = 8  # 256-id space


def dissect_one_lookup(ring: KoordeRing) -> None:
    start, key = ring.nodes[0], 201
    result = ring.lookup(start, key)
    print(f"lookup(key={key}) from node {start}:")
    print(f"  owner = {result.owner} (successor of {key} on the ring)")
    print(f"  route ({result.hops} hops, {result.debruijn_hops} de Bruijn + "
          f"{result.successor_hops} successor):")
    print("   ", " -> ".join(str(n) for n in result.path))
    print(f"  node state consulted per hop: successor + de-Bruijn finger "
          f"(e.g. d({start}) = predecessor(2*{start}) = {ring.debruijn_finger(start)})\n")


def compare_with_chord() -> None:
    rng = random.Random(42)
    rows = []
    for n in (8, 32, 128):
        nodes = sorted(rng.sample(range(1 << BITS), n))
        koorde = KoordeRing(BITS, nodes)
        chord = ChordRing(BITS, nodes)
        pairs = [(rng.choice(nodes), rng.randrange(1 << BITS)) for _ in range(200)]
        k_mean, k_max, k_db, _ = koorde.lookup_statistics(pairs)
        c_mean, c_max = chord.lookup_statistics(pairs)
        rows.append((n, k_mean, k_max, koorde.state_size(), c_mean, c_max,
                     chord.state_size()))
    print(format_table(
        ["N", "koorde hops", "max", "state/node", "chord hops", "max", "state/node"],
        rows, precision=2))
    print("\nKoorde rides the de Bruijn degree/diameter trade: logarithmic hops")
    print("from just TWO pointers per node, where Chord maintains log N fingers.")


def main() -> None:
    rng = random.Random(7)
    nodes = sorted(rng.sample(range(1 << BITS), 12))
    ring = KoordeRing(BITS, nodes)
    print(f"{BITS}-bit Koorde ring with {len(ring)} nodes: {ring.nodes}\n")
    dissect_one_lookup(ring)
    compare_with_chord()


if __name__ == "__main__":
    main()
