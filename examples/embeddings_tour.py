#!/usr/bin/env python3
"""Tour of the architectures DG(d, k) can emulate (Samatham–Pradhan).

The paper's Section 1 lists linear arrays, rings, complete binary trees
and shuffle-exchange networks as architectures the binary de Bruijn
network represents.  This example builds each embedding and routes real
messages along it.

Run:  python examples/embeddings_tour.py
"""

from repro.core.routing import apply_path, format_path
from repro.core.word import format_word
from repro.graphs.debruijn import undirected_graph
from repro.graphs.embeddings import (
    embed_complete_tree,
    embed_ring,
    emulate_shuffle_exchange,
    exchange,
    shuffle,
)
from repro.graphs.sequences import debruijn_sequence_lyndon
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator

D, K = 2, 4


def ring_section() -> None:
    sequence = debruijn_sequence_lyndon(D, K)
    ring = embed_ring(D, K)
    print(f"ring / linear array — Hamiltonian cycle from B({D},{K}) "
          f"= {''.join(map(str, sequence))}")
    print("  first sites:", " -> ".join(format_word(w) for w in ring[:6]), "-> ...")
    graph = undirected_graph(D, K)
    assert all(graph.has_edge(u, v) for u, v in zip(ring, ring[1:]))
    print(f"  {len(ring)} sites, every consecutive pair one hop apart (dilation 1)\n")


def tree_section() -> None:
    tree = embed_complete_tree(D, K)
    print(f"complete binary tree of depth {K - 1} ({len(tree)} nodes), dilation 1:")
    for path in sorted(tree, key=lambda p: (len(p), p))[:7]:
        label = "root" if not path else "node " + "".join(map(str, path))
        print(f"  {label:10s} -> site {format_word(tree[path])}")
    # Route a message root -> deepest-right leaf through the real network.
    sim = Simulator(D, K)
    source = tree[()]
    target = tree[(1,) * (K - 1)]
    message = sim.send(source, target, BidirectionalOptimalRouter())
    sim.run()
    print(f"  root -> rightmost leaf delivered in {message.hop_count} hops "
          f"(tree depth {K - 1})\n")


def shuffle_exchange_section() -> None:
    word = (0, 1, 1, 0)
    ops = "ses"
    routes = emulate_shuffle_exchange(word, ops)
    print(f"shuffle-exchange emulation starting at {format_word(word)}:")
    current = word
    total = 0
    for op, route in zip(ops, routes):
        nxt = shuffle(current) if op == "s" else exchange(current)
        landed = apply_path(current, route, D, wildcard=0)
        assert landed == nxt
        print(f"  {op}: {format_word(current)} -> {format_word(nxt)}   "
              f"de Bruijn hops: {format_path(route)}")
        total += len(route)
        current = nxt
    print(f"  {len(ops)} SE ops in {total} de Bruijn hops (slowdown <= 2)\n")


def main() -> None:
    print(f"architectures embedded in DG({D}, {K})\n")
    ring_section()
    tree_section()
    shuffle_exchange_section()


if __name__ == "__main__":
    main()
