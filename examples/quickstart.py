#!/usr/bin/env python3
"""Quickstart: distances and optimal routes in a de Bruijn network.

Covers the library's core loop in under a minute:

1. name vertices of DG(d, k) as d-ary words,
2. compute directed and undirected distances (Property 1 / Theorem 2),
3. generate optimal routing paths (Algorithms 1, 2, 4),
4. apply a path hop by hop, exactly as a network site would.

Run:  python examples/quickstart.py
"""

from repro import (
    Word,
    directed_distance,
    format_path,
    parse_word,
    route,
    undirected_distance,
    undirected_witness,
    verify_path,
)
from repro.core.routing import path_words
from repro.core.word import format_word


def main() -> None:
    d = 2  # binary alphabet
    x = parse_word("011010", d)
    y = parse_word("110110", d)
    k = len(x)

    print(f"de Bruijn network DN({d}, {k}) — {d**k} sites, diameter {k}")
    print(f"source      X = {format_word(x)}")
    print(f"destination Y = {format_word(y)}\n")

    # --- distances -----------------------------------------------------
    print("Property 1 (directed):   D(X, Y) =", directed_distance(x, y))
    print("Property 1 (reverse):    D(Y, X) =", directed_distance(y, x))
    print("Theorem 2  (undirected): D(X, Y) =", undirected_distance(x, y))
    witness = undirected_witness(x, y)
    print(f"  witness: case={witness.case!r} i={witness.i} j={witness.j} "
          f"theta={witness.theta}\n")

    # --- routing paths ---------------------------------------------------
    directed_path = route(x, y, d, directed=True)
    print(f"Algorithm 1 path  ({len(directed_path)} hops): {format_path(directed_path)}")

    undirected_path = route(x, y, d)
    print(f"Algorithm 2/4 path ({len(undirected_path)} hops): {format_path(undirected_path)}")
    print("  (L = left shift X^-(b), R = right shift X^+(b), * = any digit)\n")

    # --- walking the path ------------------------------------------------
    print("hop-by-hop trace (wildcards resolved to 0):")
    for word in path_words(x, undirected_path, d):
        print("   ", format_word(word))
    assert verify_path(x, y, undirected_path, d)

    # --- the Word convenience wrapper -------------------------------------
    w = Word.parse("0110", d=2)
    print(f"\nWord API: {w!r} --left(1)--> {w.left(1)!r}")
    print(f"          neighbors: {[str(n) for n in w.neighbors()]}")


if __name__ == "__main__":
    main()
