#!/usr/bin/env python3
"""Fault tolerance in action: ping every site while processors fail.

Demonstrates the Pradhan–Reddy property the paper cites: DN(d, k)
tolerates up to d − 1 site failures.  A coordinator pings every site,
we fail sites one by one, and watch the delivery rate with hop-by-hop
rerouting enabled — plus the vertex-disjoint route families that explain
why the guarantee holds.

Run:  python examples/fault_tolerant_broadcast.py
"""

import random

from repro.analysis.tables import format_table
from repro.core.word import format_word
from repro.graphs.debruijn import undirected_graph
from repro.network.faults import is_connected_after_failures, vertex_disjoint_paths
from repro.network.message import ControlCode
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator

D, K = 3, 3  # tolerance: d - 1 = 2 failures
COORDINATOR = (0, 0, 0)


def ping_sweep(failed):
    """Ping every healthy site from the coordinator; return delivery rate."""
    sim = Simulator(D, K, reroute_on_failure=True)
    for site in failed:
        sim.fail_node(site, at=0.0)
    router = BidirectionalOptimalRouter()
    graph = undirected_graph(D, K)
    sent = 0
    t = 1.0
    for site in graph.vertices():
        if site == COORDINATOR or site in failed:
            continue
        sim.send(COORDINATOR, site, router, at=t, control=ControlCode.PING)
        sent += 1
        t += 0.5
    stats = sim.run()
    return sent, stats.delivered_count, stats.rerouted


def main() -> None:
    graph = undirected_graph(D, K)
    rng = random.Random(1990)
    candidates = [w for w in graph.vertices() if w != COORDINATOR]
    doomed = rng.sample(candidates, 4)

    print(f"DN({D}, {K}): {D**K} sites; cited tolerance = d - 1 = {D - 1} failures")
    print(f"coordinator: {format_word(COORDINATOR)}\n")

    # Show the redundancy that underwrites the guarantee.
    target = doomed[-1]
    paths = vertex_disjoint_paths(graph, COORDINATOR, target)
    print(f"vertex-disjoint routes {format_word(COORDINATOR)} -> {format_word(target)}:")
    for path in paths:
        print("   ", " -> ".join(format_word(w) for w in path))
    print()

    rows = []
    failed = []
    for count in range(0, 5):
        if count:
            failed.append(doomed[count - 1])
        sent, delivered, rerouted = ping_sweep(failed)
        rows.append((
            count,
            " ".join(format_word(w) for w in failed) or "-",
            sent,
            delivered,
            f"{delivered / sent:.0%}",
            rerouted,
            is_connected_after_failures(graph, failed),
        ))
    print(format_table(
        ["#failed", "failed sites", "pings", "delivered", "rate", "reroutes", "still connected"],
        rows))
    print(f"\nwithin the bound (<= {D - 1} failures) delivery stays at 100%;")
    print("beyond it, delivery depends on which sites die.")


if __name__ == "__main__":
    main()
