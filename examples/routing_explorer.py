#!/usr/bin/env python3
"""Routing explorer: dissect the paper's algorithms on chosen vertex pairs.

Shows the machinery behind each route: the Morris–Pratt matching functions
(Algorithm 3), the Theorem-2 witness, the three canonical route shapes
(trivial, L^p R^q L^r, R^p L^q R^r), and the agreement between the O(k²)
and O(k) algorithms.

Run:  python examples/routing_explorer.py [X Y [d]]
      python examples/routing_explorer.py 011010 110110 2
"""

import sys

from repro.analysis.tables import format_table
from repro.core.distance import undirected_witness_matching, undirected_witness_suffix_tree
from repro.core.matching import matching_function_l, matching_function_r
from repro.core.routing import format_path, path_words, shortest_path_undirected
from repro.core.word import format_word, parse_word
from repro.core.suffix_tree import GeneralizedSuffixTree


def show_matrix(title, table):
    print(title)
    k = len(table)
    rows = [[f"i={i + 1}"] + list(row) for i, row in enumerate(table)]
    print(format_table([""] + [f"j={j + 1}" for j in range(k)], rows, precision=0))
    print()


def main() -> None:
    if len(sys.argv) >= 3:
        d = int(sys.argv[3]) if len(sys.argv) > 3 else 2
        x = parse_word(sys.argv[1], d)
        y = parse_word(sys.argv[2], d)
    else:
        d = 2
        x = parse_word("011010", d)
        y = parse_word("110110", d)
    k = len(x)

    print(f"exploring DG({d}, {k}): X = {format_word(x)}, Y = {format_word(y)}\n")

    # Algorithm 3: the matching functions of Theorem 2.
    show_matrix("matching function l_{i,j} (X start-anchored, Y end-anchored):",
                matching_function_l(x, y))
    show_matrix("matching function r_{i,j} (X end-anchored, Y start-anchored):",
                matching_function_r(x, y))

    # The two witness computations agree (Algorithm 2 vs Algorithm 4).
    wm = undirected_witness_matching(x, y)
    ws = undirected_witness_suffix_tree(x, y)
    print(f"Algorithm 2 witness: distance={wm.distance} case={wm.case} "
          f"(i={wm.i}, j={wm.j}, theta={wm.theta})")
    print(f"Algorithm 4 witness: distance={ws.distance} case={ws.case} "
          f"(i={ws.i}, j={ws.j}, theta={ws.theta})")
    assert wm.distance == ws.distance

    # The suffix tree behind Algorithm 4.
    tree = GeneralizedSuffixTree(x, y)
    lcs = tree.longest_common_substring()
    print(f"\nlongest common substring: length {lcs.s}, "
          f"X[{lcs.a + 1}..{lcs.a + lcs.s}] = Y[{lcs.b + 1}..{lcs.b + lcs.s}] = "
          f"{format_word(x[lcs.a:lcs.a + lcs.s]) if lcs.s else '(none)'}")
    print(f"suffix-tree size: {tree.tree.node_count()} nodes for "
          f"|X # Y $| = {2 * k + 2} symbols (compact => O(k))\n")

    # The route, with its canonical three-run shape annotated.
    path = shortest_path_undirected(x, y)
    shape = {"trivial": "L^k (diameter path)",
             "l": "L^p R^q L^r",
             "r": "R^p L^q R^r"}[wm.case]
    print(f"shortest path ({len(path)} hops, shape {shape}): {format_path(path)}")
    print("trace:", " -> ".join(format_word(w) for w in path_words(x, path, d)))


if __name__ == "__main__":
    main()
