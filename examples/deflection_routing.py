#!/usr/bin/env python3
"""Hot-potato routing: bufferless switching on the de Bruijn network.

DG(d, k) has in-degree = out-degree = d, so a network that forwards every
resident packet every cycle never needs a buffer — contention is resolved
by *deflecting* losers onto free ports, and Algorithm 1's next digit is
each packet's preferred port.  This example injects bursts and shows the
deflection penalty growing with load, then races the bufferless model
against the buffered store-and-forward simulator.

Run:  python examples/deflection_routing.py
"""

import random

from repro.analysis.tables import format_table
from repro.core.distance import directed_distance
from repro.network.deflection import DeflectionNetwork, uniform_deflection_workload
from repro.network.router import UnidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload

D, K = 2, 5


def burst_anatomy() -> None:
    print("--- anatomy of a deflection ---")
    net = DeflectionNetwork(D, K)
    source, target = (0,) * K, (1,) * K
    first = net.try_inject(source, target)
    second = net.try_inject(source, target)
    net.drain()
    base = directed_distance(source, target)
    for name, packet in (("first ", first), ("second", second)):
        print(f"  {name}: {packet.hops} hops "
              f"(shortest {base}), {packet.deflections} deflections, "
              f"latency {packet.latency}")
    print("  both wanted port 1 at 00000; the arbitration loser detoured.\n")


def load_sweep() -> None:
    print("--- deflection penalty vs offered load ---")
    rows = []
    for rate in (0.02, 0.10, 0.25, 0.50):
        net = DeflectionNetwork(D, K)
        stats = net.run(uniform_deflection_workload(D, K, 100, rate, random.Random(1)))
        rows.append((rate, stats.injected, stats.rejected_injections,
                     stats.mean_latency(), stats.mean_deflections()))
    print(format_table(
        ["inj. rate", "injected", "rejected", "mean latency", "mean deflections"],
        rows, precision=3))
    print()


def race_the_buffered_model() -> None:
    print("--- bufferless vs buffered, same offered pattern ---")
    workload = uniform_deflection_workload(D, K, 100, 0.15, random.Random(9))
    net = DeflectionNetwork(D, K)
    hot = net.run(list(workload))
    sim = Simulator(D, K, bidirectional=False)
    buffered = run_workload(sim, UnidirectionalOptimalRouter(),
                            [(float(t), s, d) for t, s, d in workload])
    print(format_table(
        ["model", "delivered", "mean latency", "price paid"],
        [
            ("hot potato (no buffers)", len(hot.delivered), hot.mean_latency(),
             f"{hot.mean_deflections():.2f} deflections/pkt"),
            ("store-and-forward", buffered.delivered_count, buffered.mean_latency(),
             f"{buffered.mean_queue_delay():.2f} cycles queueing/hop"),
        ], precision=3))


def main() -> None:
    print(f"DN({D},{K}): {D**K} sites, out-degree {D}, diameter {K}\n")
    burst_anatomy()
    load_sweep()
    race_the_buffered_model()


if __name__ == "__main__":
    main()
