#!/usr/bin/env python3
"""Debugging a simulation with the trace recorder.

Attaches a `TraceRecorder` to a DN(2,5) run with a deliberate hotspot,
then uses its views to answer the questions you actually ask when a
network misbehaves: where is the traffic concentrating, what happened to
one specific message, and what does the whole run look like over time.

Run:  python examples/trace_timeline.py
"""

import random

from repro.core.word import format_word
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.tracing import TraceRecorder
from repro.network.traffic import hotspot

D, K = 2, 5
HOT = (1,) * K


def main() -> None:
    sim = Simulator(D, K)
    recorder = TraceRecorder(sim)
    workload = list(hotspot(D, K, cycles=30, injection_rate=0.3,
                            hotspot_fraction=0.6, target=HOT,
                            rng=random.Random(1990)))
    stats = run_workload(sim, BidirectionalOptimalRouter(), workload)
    print(f"DN({D},{K}) hotspot run: {stats.delivered_count} messages, "
          f"{len(recorder.entries)} trace events\n")

    print("Q1: where is traffic concentrating?")
    for site, events in recorder.busiest_sites(top=5):
        marker = "  <-- the hotspot" if site == HOT else ""
        print(f"   {format_word(site)}: {events} events{marker}")

    victim = max(stats.delivered, key=lambda m: m.latency)
    print(f"\nQ2: what happened to the slowest message (#{victim.message_id}, "
          f"latency {victim.latency:.1f})?")
    for entry in recorder.message_timeline(victim.message_id):
        print(f"   t={entry.time:6.1f}  {entry.kind:7s} at {format_word(entry.site)}")

    print("\nQ3: what does the whole run look like?")
    print(recorder.render_timeline(buckets=48, max_sites=8))

    print("\n(the full trace exports as JSON lines via recorder.to_jsonl())")


if __name__ == "__main__":
    main()
