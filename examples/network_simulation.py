#!/usr/bin/env python3
"""Simulate a DN(2, 6) network under several traffic patterns and routers.

Reproduces, interactively, what benchmark E6 measures: the optimal routers
of the paper versus the trivial diameter-path router and classical BFS
next-hop tables, across uniform, hotspot and bit-reversal traffic.

Run:  python examples/network_simulation.py
"""

import random

from repro.analysis.tables import format_table
from repro.graphs.debruijn import undirected_graph
from repro.network.router import (
    BidirectionalOptimalRouter,
    TableDrivenRouter,
    TrivialRouter,
)
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import bit_reversal, hotspot, random_pairs

D, K = 2, 6


def build_routers():
    """Fresh router instances (the table router caches per destination)."""
    return [
        BidirectionalOptimalRouter(),  # Algorithm 2/4 with wildcards
        BidirectionalOptimalRouter(use_wildcards=False),
        TableDrivenRouter(undirected_graph(D, K)),
        TrivialRouter(),
    ]


def workloads():
    yield "uniform (600 msgs)", random_pairs(D, K, count=600, spacing=0.25,
                                             rng=random.Random(7))
    yield "hotspot 50% -> 111111", list(hotspot(D, K, cycles=10, injection_rate=0.5,
                                                 hotspot_fraction=0.5,
                                                 rng=random.Random(7)))
    yield "bit reversal", list(bit_reversal(D, K, cycles=4))


def main() -> None:
    print(f"DN({D}, {K}): {D**K} sites, diameter {K}\n")
    for name, workload in workloads():
        rows = []
        for router in build_routers():
            sim = Simulator(D, K)
            stats = run_workload(sim, router, list(workload))
            summary = stats.summary()
            label = router.name
            if isinstance(router, BidirectionalOptimalRouter) and not router.use_wildcards:
                label += " (no *)"
            rows.append((
                label,
                int(summary["delivered"]),
                summary["mean_hops"],
                summary["mean_latency"],
                summary["max_link_load"],
                summary["load_fairness"],
            ))
        print(f"--- workload: {name} ---")
        print(format_table(
            ["router", "delivered", "mean hops", "mean latency", "max link load", "fairness"],
            rows, precision=3))
        print()


if __name__ == "__main__":
    main()
