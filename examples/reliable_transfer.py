#!/usr/bin/env python3
"""Reliable delivery over a failing de Bruijn network.

Builds the stop-and-wait transport of `repro.network.reliable` on top of
the datagram simulator and walks three scenarios:

1. healthy network — one attempt, one ACK;
2. transient site failure — the first copy dies, the retransmission after
   the site recovers goes through;
3. permanent link cut with rerouting — the routing layer detours, the
   transport never even notices.

Run:  python examples/reliable_transfer.py
"""

from repro.core.routing import path_words
from repro.core.word import format_word
from repro.network.reliable import ReliableTransport
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator

D, K = 2, 4
SRC, DST = (0, 0, 1, 0), (1, 1, 0, 1)


def describe(title, transfer, stats):
    outcome = "acknowledged" if transfer.completed else "ABANDONED"
    print(f"  {title}: {outcome} after {transfer.attempts} attempt(s); "
          f"data copies sent {stats.data_sent}, ACKs {stats.acks_sent}, "
          f"completed at t={transfer.acked_at}")


def healthy() -> None:
    sim = Simulator(D, K)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter())
    transfer = transport.send(SRC, DST, payload=b"block-0")
    stats = transport.run()
    describe("healthy network   ", transfer, stats)


def transient_failure() -> None:
    router = BidirectionalOptimalRouter(use_wildcards=False)
    midpoint = path_words(SRC, router.plan(SRC, DST), D)[1]
    sim = Simulator(D, K, reroute_on_failure=False)
    sim.fail_node(midpoint, at=0.0)
    sim.recover_node(midpoint, at=20.0)
    transport = ReliableTransport(sim, router, timeout=24.0)
    transfer = transport.send(SRC, DST, payload=b"block-1", at=1.0)
    stats = transport.run()
    describe(f"transient fault at {format_word(midpoint)}", transfer, stats)


def rerouted_cut() -> None:
    router = BidirectionalOptimalRouter(use_wildcards=False)
    first_hop = path_words(SRC, router.plan(SRC, DST), D)[1]
    sim = Simulator(D, K, reroute_on_failure=True)
    sim.fail_link(SRC, first_hop)
    transport = ReliableTransport(sim, router)
    transfer = transport.send(SRC, DST, payload=b"block-2")
    stats = transport.run()
    describe(f"link {format_word(SRC)}-{format_word(first_hop)} cut (rerouting on)",
             transfer, stats)
    print(f"    reroutes performed by the network layer: {sim.stats.rerouted}")


def main() -> None:
    print(f"reliable transfer {format_word(SRC)} -> {format_word(DST)} "
          f"on DN({D},{K})\n")
    healthy()
    transient_failure()
    rerouted_cut()
    print("\nthe transport layer only pays retransmissions when the routing")
    print("layer cannot hide the fault — exactly the division of labor you want.")


if __name__ == "__main__":
    main()
