#!/usr/bin/env python3
"""Distributed sorting on the de Bruijn network (Samatham–Pradhan in action).

The de Bruijn network embeds a dilation-1 linear array (a Hamiltonian
path), so any array algorithm runs at full speed.  This example sorts one
key per site with odd–even transposition sort: every compare–exchange
partner is exactly one network hop away.

Run:  python examples/distributed_sorting.py
"""

import random

from repro.analysis.tables import format_table
from repro.core.word import format_word
from repro.graphs.embeddings import embed_linear_array
from repro.network.sorting import odd_even_transposition_sort, sort_trace, worst_case_rounds

D, K = 2, 3


def show_small_trace() -> None:
    keys = [7, 3, 6, 1, 4, 0, 5, 2]
    array = embed_linear_array(D, K)
    print("array embedding (Hamiltonian path of DG(2,3)):")
    print("  " + " - ".join(format_word(site) for site in array))
    print(f"\ninitial keys: {keys}")
    print("odd-even transposition rounds:")
    for round_index, state in enumerate(sort_trace(D, K, keys)):
        marker = "even" if round_index % 2 == 1 else "odd "
        prefix = "start" if round_index == 0 else f"r{round_index:02d} {marker}"
        print(f"  {prefix}: {list(state)}")


def scaling_table() -> None:
    print("\nscaling (random keys, one per site):")
    rows = []
    for d, k in [(2, 3), (2, 4), (2, 5), (2, 6), (3, 3)]:
        n = d**k
        rng = random.Random(n)
        keys = [rng.randrange(10 * n) for _ in range(n)]
        result = odd_even_transposition_sort(d, k, keys)
        assert list(result.final_keys) == sorted(keys)
        rows.append((d, k, n, result.rounds_used, worst_case_rounds(n), result.messages))
    print(format_table(
        ["d", "k", "sites", "rounds used", "worst case", "messages"], rows))
    print("\nevery round is one parallel cycle of 1-hop exchanges — the")
    print("dilation-1 embedding is what makes the bound exactly N rounds.")


def main() -> None:
    show_small_trace()
    scaling_table()


if __name__ == "__main__":
    main()
