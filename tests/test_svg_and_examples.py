"""Tests for the SVG renderer, plus smoke tests running every example."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

from repro.analysis.svg import graph_to_svg, route_to_svg
from repro.core.routing import path_words, shortest_path_undirected
from repro.graphs.debruijn import directed_graph, undirected_graph

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


# ----------------------------------------------------------------------
# SVG rendering
# ----------------------------------------------------------------------


def test_svg_document_structure():
    svg = graph_to_svg(undirected_graph(2, 3))
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count("<circle") == 8
    assert svg.count("<text") == 8
    assert "011" in svg


def test_svg_edge_count_matches_graph():
    graph = directed_graph(2, 3)
    svg = graph_to_svg(graph)
    assert svg.count('<path class="edge"') == graph.size()


def test_svg_highlighting():
    x, y = (0, 0, 1), (1, 1, 1)
    trace = path_words(x, shortest_path_undirected(x, y, use_wildcards=False), 2)
    svg = route_to_svg(undirected_graph(2, 3), trace)
    assert svg.count('class="node-hl"') == len(trace)
    assert svg.count('class="edge-hl"') == len(trace) - 1


def test_svg_no_highlight_classes_without_path():
    svg = graph_to_svg(undirected_graph(2, 3))
    assert 'class="node-hl"' not in svg
    assert 'class="edge-hl"' not in svg


def test_svg_size_parameter():
    svg = graph_to_svg(undirected_graph(2, 2), size=300)
    assert 'width="300"' in svg


# ----------------------------------------------------------------------
# Every example runs clean
# ----------------------------------------------------------------------


def test_examples_directory_is_complete():
    assert len(EXAMPLES) >= 11
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} produced no output"
