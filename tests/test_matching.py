"""Unit tests for :mod:`repro.core.matching` — Algorithm 3."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    common_substrings_brute,
    failure_function,
    l_brute,
    matching_function_l,
    matching_function_r,
    matching_row_l,
    matching_row_r,
    r_brute,
)


def _failure_brute(pattern):
    n = len(pattern)
    out = []
    for j in range(n):
        best = 0
        for s in range(1, j + 1):
            if pattern[:s] == pattern[j - s + 1 : j + 1]:
                best = s
        out.append(best)
    return out


# ----------------------------------------------------------------------
# Failure function (paper Algorithm 3 lines 1-7)
# ----------------------------------------------------------------------


def test_failure_function_known_value():
    assert failure_function((0, 1, 0, 0, 1, 0, 1)) == [0, 0, 1, 1, 2, 3, 2]


def test_failure_function_all_equal_digits():
    assert failure_function((1, 1, 1, 1)) == [0, 1, 2, 3]


def test_failure_function_no_repeats():
    assert failure_function((0, 1, 2, 3)) == [0, 0, 0, 0]


def test_failure_function_empty_and_single():
    assert failure_function(()) == []
    assert failure_function((5,)) == [0]


@given(st.lists(st.integers(0, 2), min_size=1, max_size=30))
@settings(max_examples=300)
def test_failure_function_matches_brute(pattern):
    assert failure_function(tuple(pattern)) == _failure_brute(tuple(pattern))


@given(st.lists(st.integers(0, 1), min_size=2, max_size=40))
@settings(max_examples=200)
def test_failure_function_values_are_proper_prefixes(pattern):
    fail = failure_function(tuple(pattern))
    for j, value in enumerate(fail):
        assert 0 <= value <= j
        assert tuple(pattern[:value]) == tuple(pattern[j - value + 1 : j + 1])


# ----------------------------------------------------------------------
# Matching function rows (paper Algorithm 3 lines 8-14)
# ----------------------------------------------------------------------

WORD_PAIRS = st.integers(min_value=2, max_value=4).flatmap(
    lambda d: st.integers(min_value=1, max_value=10).flatmap(
        lambda k: st.tuples(
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
        )
    )
)


@given(WORD_PAIRS)
@settings(max_examples=300)
def test_matching_row_l_matches_definition(pair):
    x, y = pair
    k = len(x)
    for i in range(k):
        row = matching_row_l(x, y, i)
        assert row == [l_brute(x, y, i, j) for j in range(k)]


@given(WORD_PAIRS)
@settings(max_examples=300)
def test_matching_row_r_matches_definition(pair):
    x, y = pair
    k = len(x)
    for i in range(k):
        row = matching_row_r(x, y, i)
        assert row == [r_brute(x, y, i, j) for j in range(k)]


def test_matching_function_l_shape():
    table = matching_function_l((0, 1, 0), (1, 0, 1))
    assert len(table) == 3 and all(len(row) == 3 for row in table)


def test_matching_l_identity_full_match():
    # l(0, k-1) must be k when x == y (drives D(X, X) = 0 in Theorem 2).
    x = (0, 1, 1, 0)
    assert matching_function_l(x, x)[0][3] == 4


def test_matching_l_handles_pattern_longer_than_prefix():
    # s is capped by j+1 (cannot match more of Y than has been read).
    x = (0, 0, 0)
    y = (0, 0, 0)
    row = matching_row_l(x, y, 0)
    assert row == [1, 2, 3]


def test_matching_l_full_match_then_continue():
    # After a full pattern match, Algorithm 3 line 10 falls back through
    # the failure function rather than over-running the pattern.
    x = (0, 1, 1)  # pattern x[1:] = (1, 1) when i = 1
    y = (1, 1, 1)
    row = matching_row_l(x, y, 1)
    assert row == [1, 2, 2]


def test_matching_r_is_l_on_reversed_words():
    x, y = (0, 1, 1, 0), (1, 1, 0, 1)
    k = len(x)
    xr, yr = tuple(reversed(x)), tuple(reversed(y))
    table_r = matching_function_r(x, y)
    table_l_rev = matching_function_l(xr, yr)
    for i in range(k):
        for j in range(k):
            assert table_r[i][j] == table_l_rev[k - 1 - i][k - 1 - j]


def test_l_and_r_brute_are_consistent_transposes():
    # r_{i,j}(X, Y) matches X-suffix to Y-prefix; swapping the roles of the
    # words and anchors turns it into an l-match: r(i,j)(X,Y)=l(j,i)(Y,X).
    x, y = (0, 1, 2, 0), (2, 0, 1, 1)
    for i in range(4):
        for j in range(4):
            assert r_brute(x, y, i, j) == l_brute(y, x, j, i)


# ----------------------------------------------------------------------
# Common substrings (used by the distance reformulation)
# ----------------------------------------------------------------------


def test_common_substrings_brute_finds_maximal_anchors():
    subs = common_substrings_brute((0, 1), (1, 0))
    assert ((0, 1, 1) in subs) and ((1, 0, 1) in subs)
    assert len(subs) == 2


def test_common_substrings_empty_when_disjoint_alphabets():
    assert common_substrings_brute((0, 0), (1, 1)) == []


def test_common_substrings_full_word_on_equal_inputs():
    subs = common_substrings_brute((0, 1, 0), (0, 1, 0))
    assert (0, 0, 3) in subs


@given(WORD_PAIRS)
@settings(max_examples=200)
def test_common_substrings_are_genuine_matches(pair):
    x, y = pair
    for a, b, s in common_substrings_brute(x, y):
        assert s >= 1
        assert x[a : a + s] == y[b : b + s]
        # maximality at the anchor
        if a + s < len(x) and b + s < len(y):
            assert x[a + s] != y[b + s]
