"""Tests for the routing algorithms (paper Algorithms 1, 2 and 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import directed_distance, undirected_distance
from repro.core.routing import (
    Direction,
    RoutingStep,
    apply_path,
    apply_step,
    format_path,
    parse_path,
    path_length_matches_distance,
    path_words,
    route,
    shortest_path_undirected,
    shortest_path_unidirectional,
    verify_path,
)
from repro.exceptions import RoutingError
from tests.conftest import SMALL_GRAPHS, all_words, bfs_oracle

PAIR_STRATEGY = st.integers(min_value=2, max_value=3).flatmap(
    lambda d: st.integers(min_value=1, max_value=12).flatmap(
        lambda k: st.tuples(
            st.just(d),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
        )
    )
)


# ----------------------------------------------------------------------
# Algorithm 1 (uni-directional)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", SMALL_GRAPHS, ids=lambda v: str(v))
def test_algorithm1_exhaustive_optimal_and_correct(d, k):
    for x in all_words(d, k):
        oracle = bfs_oracle(x, d, directed=True)
        for y in all_words(d, k):
            path = shortest_path_unidirectional(x, y)
            assert len(path) == oracle[y]
            assert verify_path(x, y, path, d)
            assert all(step.direction == Direction.LEFT for step in path)


def test_algorithm1_empty_path_for_same_vertex():
    assert shortest_path_unidirectional((0, 1), (0, 1)) == []


def test_algorithm1_spells_destination_suffix():
    # x = 011, y = 110: overlap l = 2 ("11"), one left shift inserting y_3.
    path = shortest_path_unidirectional((0, 1, 1), (1, 1, 0))
    assert [(s.direction, s.digit) for s in path] == [(Direction.LEFT, 0)]


def test_algorithm1_rejects_length_mismatch():
    with pytest.raises(RoutingError):
        shortest_path_unidirectional((0, 1), (0, 1, 1))


@given(PAIR_STRATEGY)
@settings(max_examples=300)
def test_algorithm1_random_pairs(args):
    d, x, y = args
    path = shortest_path_unidirectional(x, y)
    assert len(path) == directed_distance(x, y)
    assert verify_path(x, y, path, d)
    assert path_length_matches_distance(x, y, path, directed=True)


# ----------------------------------------------------------------------
# Algorithms 2 and 4 (bi-directional)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", SMALL_GRAPHS, ids=lambda v: str(v))
@pytest.mark.parametrize("method", ["matching", "suffix_tree"])
def test_algorithm2_and_4_exhaustive_optimal_and_correct(d, k, method):
    for x in all_words(d, k):
        oracle = bfs_oracle(x, d, directed=False)
        for y in all_words(d, k):
            path = shortest_path_undirected(x, y, method=method)
            assert len(path) == oracle[y], (x, y)
            assert verify_path(x, y, path, d, wildcard=0)
            # Wildcards must not matter: any resolution reaches y.
            assert verify_path(x, y, path, d, wildcard=d - 1)


@given(PAIR_STRATEGY)
@settings(max_examples=300, deadline=None)
def test_algorithm2_random_pairs(args):
    d, x, y = args
    path = shortest_path_undirected(x, y, method="matching")
    assert len(path) == undirected_distance(x, y)
    assert verify_path(x, y, path, d)


@given(PAIR_STRATEGY)
@settings(max_examples=300, deadline=None)
def test_algorithm4_random_pairs(args):
    d, x, y = args
    path = shortest_path_undirected(x, y, method="suffix_tree")
    assert len(path) == undirected_distance(x, y)
    assert verify_path(x, y, path, d)


@given(PAIR_STRATEGY)
@settings(max_examples=200, deadline=None)
def test_wildcard_resolution_is_immaterial(args):
    # Every way of filling the paper's "arbitrarily chosen digits" lands on y.
    d, x, y = args
    path = shortest_path_undirected(x, y, use_wildcards=True)
    for fill in range(d):
        assert apply_path(x, path, d, wildcard=fill) == y
    # A position-dependent policy also works.
    assert apply_path(x, path, d, wildcard=lambda word, index: (index + word[0]) % d) == y


def test_no_wildcards_uses_filler_digit():
    path = shortest_path_undirected((0, 1, 1, 0), (1, 1, 1, 0), use_wildcards=False, filler=1)
    assert all(step.digit is not None for step in path)
    assert verify_path((0, 1, 1, 0), (1, 1, 1, 0), path, 2)


def test_undirected_same_vertex_is_empty_path():
    assert shortest_path_undirected((1, 0, 1), (1, 0, 1)) == []


def test_undirected_rejects_length_mismatch():
    with pytest.raises(RoutingError):
        shortest_path_undirected((0, 1), (0, 1, 1))


def test_trivial_case_spells_destination_left_shifts():
    # 000 -> 111 is a diameter pair: the path is k left shifts spelling y.
    path = shortest_path_undirected((0, 0, 0), (1, 1, 1))
    assert [(s.direction, s.digit) for s in path] == [(Direction.LEFT, 1)] * 3


# ----------------------------------------------------------------------
# Path application helpers
# ----------------------------------------------------------------------


def test_apply_step_left_and_right():
    assert apply_step((0, 1, 1), RoutingStep(Direction.LEFT, 0), 2) == (1, 1, 0)
    assert apply_step((0, 1, 1), RoutingStep(Direction.RIGHT, 1), 2) == (1, 0, 1)


def test_apply_step_wildcard_uses_policy():
    step = RoutingStep(Direction.LEFT, None)
    assert apply_step((0, 1), step, 2, wildcard=1) == (1, 1)
    assert apply_step((0, 1), step, 2, wildcard=lambda w, i: 0) == (1, 0)


def test_path_words_traces_every_hop():
    path = [RoutingStep(Direction.LEFT, 1), RoutingStep(Direction.RIGHT, 0)]
    words = path_words((0, 0, 0), path, 2)
    assert words == [(0, 0, 0), (0, 0, 1), (0, 0, 0)]


def test_route_validates_and_dispatches():
    directed = route((0, 1, 1), (1, 1, 0), d=2, directed=True)
    undirected = route((0, 1, 1), (1, 1, 0), d=2, directed=False)
    assert len(directed) == 1 and len(undirected) == 1


def test_route_rejects_invalid_words():
    from repro.exceptions import InvalidWordError

    with pytest.raises(InvalidWordError):
        route((0, 2), (0, 1), d=2)


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------


def test_format_and_parse_roundtrip():
    path = [
        RoutingStep(Direction.LEFT, 0),
        RoutingStep(Direction.RIGHT, None),
        RoutingStep(Direction.RIGHT, 3),
    ]
    text = format_path(path)
    assert text == "L0 R* R3"
    assert parse_path(text) == path


def test_parse_path_rejects_garbage():
    with pytest.raises(RoutingError):
        parse_path("Q1")
    with pytest.raises(RoutingError):
        parse_path("L")


@pytest.mark.parametrize(
    "token", ["Lx", "L+1", "L-1", "L1_2", "L 1", "L*1", "L１", "R1.0", "Lxyz"]
)
def test_parse_path_rejects_malformed_digit_bodies(token):
    """int()'s permissiveness must not leak through as ValueError."""
    with pytest.raises(RoutingError) as excinfo:
        parse_path(token)
    assert repr(token.split()[0]) in str(excinfo.value)


def test_parse_path_range_checks_against_alphabet():
    # "L12" parses as digit 12 — fine for d >= 13, rejected for binary.
    assert parse_path("L12") == [RoutingStep(Direction.LEFT, 12)]
    assert parse_path("L12", d=13) == [RoutingStep(Direction.LEFT, 12)]
    with pytest.raises(RoutingError) as excinfo:
        parse_path("L12", d=2)
    assert "'L12'" in str(excinfo.value)
    with pytest.raises(RoutingError):
        parse_path("L0 R1 L2", d=2)


PATH_STRATEGY = st.lists(
    st.tuples(
        st.sampled_from([Direction.LEFT, Direction.RIGHT]),
        st.one_of(st.none(), st.integers(min_value=0, max_value=35)),
    ).map(lambda pair: RoutingStep(*pair)),
    max_size=12,
)


@given(PATH_STRATEGY)
@settings(max_examples=200, deadline=None)
def test_format_parse_roundtrip_property(path):
    """format_path and parse_path are exact inverses, wildcards included."""
    assert parse_path(format_path(path)) == path


def test_step_str_wildcard():
    assert str(RoutingStep(Direction.RIGHT, None)) == "R*"
    assert RoutingStep(Direction.RIGHT, None).is_wildcard
    assert RoutingStep(Direction.RIGHT, None).resolved(2) == RoutingStep(Direction.RIGHT, 2)
