"""Tests for the route-query service: protocol, metrics, engine, server."""

from __future__ import annotations

import asyncio
import gc
import random
import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import directed_distance, undirected_distance
from repro.core.routing import Direction, RoutingStep, route
from repro.core.tables import CompiledRouteTable
from repro.core.word import random_word
from repro.exceptions import ProtocolError, ServiceError
from repro.service.client import (
    QueryOutcome,
    RouteReply,
    RouteServiceClient,
    fetch_stats,
    query_once,
    run_burst,
)
from repro.service.engine import RouteQueryEngine
from repro.service.metrics import Counter, Histogram, MetricsRegistry
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    decode_error,
    decode_query,
    decode_reply,
    decode_stats_reply,
    encode_error,
    encode_frame,
    encode_query,
    encode_reply,
    encode_stats_reply,
    encode_stats_request,
)
from repro.service.server import RouteQueryServer, ServerConfig


def run(coro):
    """Run one asyncio scenario to completion."""
    return asyncio.run(coro)


def _pairs(d, k, count, seed=0):
    rng = random.Random(seed)
    return [(random_word(d, k, rng), random_word(d, k, rng))
            for _ in range(count)]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


def test_query_frame_roundtrip():
    blob = encode_query(9, 2, (0, 1, 1), (1, 1, 0), directed=True,
                        want_path=False)
    (frame,) = FrameDecoder().feed(blob)
    assert frame.frame_type == FrameType.QUERY
    query = decode_query(frame)
    assert query.request_id == 9
    assert (query.d, query.k) == (2, 3)
    assert query.source == (0, 1, 1)
    assert query.destination == (1, 1, 0)
    assert query.directed and not query.want_path


def test_reply_frame_roundtrip():
    path = [RoutingStep(Direction.LEFT, 1), RoutingStep(Direction.RIGHT, None)]
    (frame,) = FrameDecoder().feed(encode_reply(3, 2, path))
    assert frame.frame_type == FrameType.REPLY
    assert decode_reply(frame) == (2, path)


def test_reply_frame_distance_only():
    (frame,) = FrameDecoder().feed(encode_reply(4, 5, None))
    assert decode_reply(frame) == (5, [])


def test_error_frame_roundtrip():
    (frame,) = FrameDecoder().feed(
        encode_error(11, ErrorCode.OVERLOADED, "queue full"))
    assert decode_error(frame) == (ErrorCode.OVERLOADED, "queue full")


def test_stats_frames_roundtrip():
    (request,) = FrameDecoder().feed(encode_stats_request(1))
    assert request.frame_type == FrameType.STATS and request.body == b""
    snapshot = {"counters": {"server.replies": 7}, "histograms": {}}
    (reply,) = FrameDecoder().feed(encode_stats_reply(2, snapshot))
    assert decode_stats_reply(reply) == snapshot


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_decoder_is_chunking_invariant(data):
    """Arbitrary TCP segmentation decodes to the same frame stream."""
    frames = data.draw(st.lists(st.sampled_from([
        encode_stats_request(1),
        encode_query(2, 2, (0, 1), (1, 0)),
        encode_reply(3, 1, [RoutingStep(Direction.LEFT, 0)]),
        encode_error(4, ErrorCode.TIMEOUT, "late"),
    ]), min_size=1, max_size=6))
    stream = b"".join(frames)
    cut_count = data.draw(st.integers(0, min(6, len(stream) - 1)))
    cuts = sorted(data.draw(st.sets(
        st.integers(1, len(stream) - 1),
        min_size=cut_count, max_size=cut_count)))
    decoder = FrameDecoder()
    decoded = []
    previous = 0
    for cut in cuts + [len(stream)]:
        decoded.extend(decoder.feed(stream[previous:cut]))
        previous = cut
    assert len(decoded) == len(frames)
    assert decoder.pending_bytes == 0


def test_decoder_rejects_unknown_frame_type():
    blob = bytearray(encode_stats_request(1))
    blob[4] = 0xEE
    with pytest.raises(ProtocolError):
        FrameDecoder().feed(bytes(blob))


def test_decoder_rejects_oversized_length():
    with pytest.raises(ProtocolError):
        FrameDecoder().feed(b"\xff\xff\xff\xff")


def test_decode_query_rejects_digit_outside_alphabet():
    blob = encode_query(1, 3, (0, 2, 1), (1, 0, 2))
    (frame,) = FrameDecoder().feed(blob)
    bad = Frame(frame.frame_type, frame.request_id,
                frame.body[:1] + bytes([2]) + frame.body[2:])
    with pytest.raises(ProtocolError):
        decode_query(bad)


def test_decode_query_rejects_truncated_body():
    (frame,) = FrameDecoder().feed(encode_query(1, 2, (0, 1), (1, 0)))
    with pytest.raises(ProtocolError):
        decode_query(Frame(frame.frame_type, 1, frame.body[:-1]))


def test_encode_query_rejects_length_mismatch():
    with pytest.raises(ProtocolError):
        encode_query(1, 2, (0, 1), (1, 0, 1))


def test_encode_frame_rejects_wide_request_id():
    with pytest.raises(ProtocolError):
        encode_frame(FrameType.STATS, 1 << 32)


def test_decode_error_rejects_unknown_code():
    (frame,) = FrameDecoder().feed(encode_error(1, ErrorCode.INTERNAL, ""))
    with pytest.raises(ProtocolError):
        decode_error(Frame(frame.frame_type, 1, bytes([250])))


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    counter = Counter("demo")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_histogram_quantiles_track_sorted_samples():
    rng = random.Random(42)
    histogram = Histogram("latency")
    samples = [rng.expovariate(1 / 0.003) + 1e-4 for _ in range(5000)]
    for value in samples:
        histogram.observe(value)
    samples.sort()
    for q in (0.50, 0.95, 0.99):
        exact = samples[int(q * len(samples)) - 1]
        estimate = histogram.quantile(q)
        # Geometric buckets are 75 % apart; the estimate must land within
        # one bucket of the exact sample quantile.
        assert exact / 1.8 <= estimate <= exact * 1.8
    assert histogram.count == 5000
    assert histogram.quantile(1.0) == max(samples)


def test_histogram_empty_and_bad_inputs():
    histogram = Histogram("empty", bounds=(1.0, 2.0))
    assert histogram.quantile(0.5) == 0.0
    assert histogram.snapshot()["count"] == 0.0
    with pytest.raises(ValueError):
        histogram.quantile(0.0)
    with pytest.raises(ValueError):
        Histogram("bad", bounds=())
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(2.0, 1.0))


def test_registry_get_or_create_and_snapshot():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")
    registry.inc("a", 3)
    registry.set_counter("gauge", 9)
    registry.set_counter("gauge", 2)  # gauge-style values may go down
    registry.histogram("h").observe(0.5)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["a"] == 3
    assert snapshot["counters"]["gauge"] == 2
    assert snapshot["histograms"]["h"]["count"] == 1.0


@settings(deadline=None, max_examples=40)
@given(
    left=st.lists(st.floats(min_value=1e-5, max_value=5.0), max_size=200),
    right=st.lists(st.floats(min_value=1e-5, max_value=5.0), max_size=200),
)
def test_merged_percentiles_match_concatenated_samples(left, right):
    """The satellite property: merge == one histogram over both streams.

    Merging is bucket-wise count addition with min-of-mins /
    max-of-maxes, so the merged estimator state is *identical* to a
    single histogram that observed the concatenation — quantiles agree
    exactly — and both stay within one bucket width of the true sorted-
    sample percentile.
    """
    shard_a, shard_b, merged, oracle = (
        MetricsRegistry() for _ in range(4)
    )
    for value in left:
        shard_a.histogram("lat").observe(value)
        oracle.histogram("lat").observe(value)
    for value in right:
        shard_b.histogram("lat").observe(value)
        oracle.histogram("lat").observe(value)
    shard_a.inc("q", len(left))
    shard_b.inc("q", len(right))
    merged.merge(shard_a.snapshot())
    merged.merge(shard_b.snapshot())

    assert merged.snapshot()["counters"]["q"] == len(left) + len(right)
    got = merged.histogram("lat")
    want = oracle.histogram("lat")
    assert got.count == want.count
    assert got.counts == want.counts
    for q in (0.5, 0.95, 0.99):
        assert got.quantile(q) == pytest.approx(want.quantile(q))

    samples = sorted(left + right)
    if samples:
        import bisect
        import math

        for q in (0.5, 0.99):
            rank = max(0, math.ceil(q * len(samples)) - 1)
            exact = samples[rank]
            estimate = got.quantile(q)
            # Within one bucket width: the estimate interpolates inside
            # the bucket holding the rank-th observation, and clamping
            # to observed min/max keeps it inside that bucket too.
            index = bisect.bisect_left(got.bounds, exact)
            lower = got.bounds[index - 1] if index > 0 else 0.0
            upper = (got.bounds[index] if index < len(got.bounds)
                     else samples[-1])
            assert abs(estimate - exact) <= (upper - lower) + 1e-9


def test_merge_rejects_incompatible_histograms():
    registry = MetricsRegistry()
    donor = MetricsRegistry()
    donor.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
    registry.histogram("h", bounds=(1.0, 3.0))
    with pytest.raises(ValueError):
        registry.merge(donor.snapshot())

    summary_only = donor.snapshot()
    del summary_only["histograms"]["h"]["bounds"]
    with pytest.raises(ValueError):
        MetricsRegistry().merge(summary_only)

    # Merging an empty histogram is a no-op, not an error.
    empty = MetricsRegistry()
    empty.histogram("h", bounds=(1.0, 2.0))
    target = MetricsRegistry()
    target.merge(empty.snapshot())
    assert target.histogram("h", bounds=(1.0, 2.0)).count == 0


# ----------------------------------------------------------------------
# Engine tiers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("directed", [False, True])
def test_engine_planner_tier_matches_route(directed):
    engine = RouteQueryEngine(2, 5)
    for x, y in _pairs(2, 5, 40, seed=3):
        distance, path = engine.resolve(x, y, directed, want_path=True)
        expected = route(x, y, 2, directed=directed, use_wildcards=False)
        assert distance == len(expected)
        assert path == expected
    assert engine.registry.counter("engine.planned").value == 40 * 1


def test_engine_table_tier_matches_planner():
    table = CompiledRouteTable.compile(2, 5, workers=1)
    engine = RouteQueryEngine(2, 5, table=table)
    for x, y in _pairs(2, 5, 40, seed=4):
        distance, path = engine.resolve(x, y, False, want_path=True)
        assert distance == undirected_distance(x, y)
        assert len(path) == distance
    assert engine.registry.counter("engine.table_lookups").value == 40
    assert engine.registry.counter("engine.planned").value == 0
    # Directed queries fall back to the planner (table is undirected).
    x, y = (0, 0, 1, 1, 0), (1, 1, 0, 0, 1)
    distance, _ = engine.resolve(x, y, True, want_path=True)
    assert distance == directed_distance(x, y)
    assert engine.registry.counter("engine.planned").value == 1


def test_engine_distance_only_skips_path():
    engine = RouteQueryEngine(2, 4)
    distance, path = engine.resolve((0, 0, 1, 1), (1, 1, 0, 0), False, False)
    assert path is None
    assert distance == undirected_distance((0, 0, 1, 1), (1, 1, 0, 0))


@pytest.mark.parametrize("directed", [False, True])
@pytest.mark.parametrize("with_table", [False, True])
def test_engine_batch_distances_match_pairs(directed, with_table):
    table = (CompiledRouteTable.compile(2, 5, workers=1, directed=directed)
             if with_table else None)
    engine = RouteQueryEngine(2, 5, table=table)
    destination = (1, 0, 1, 1, 0)
    sources = [x for x, _ in _pairs(2, 5, 25, seed=5)]
    got = engine.resolve_distances(destination, sources, directed)
    oracle = directed_distance if directed else undirected_distance
    assert got == [oracle(x, destination) for x in sources]


def test_engine_cache_disabled_and_table_mismatch():
    engine = RouteQueryEngine(2, 4, cache_size=0)
    assert engine.cache is None
    engine.resolve((0, 1, 0, 1), (1, 0, 1, 0), False, True)
    with pytest.raises(ServiceError):
        engine.attach_table(CompiledRouteTable.compile(2, 3, workers=1))


# ----------------------------------------------------------------------
# Server and client, end to end
# ----------------------------------------------------------------------


def test_server_roundtrip_matches_oracle():
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with RouteServiceClient("127.0.0.1", server.port,
                                          d=2) as client:
                pairs = _pairs(2, 6, 60, seed=6)
                outcome = await client.query_many(pairs)
                assert outcome.ok_count == len(pairs)
                for (x, y), reply in zip(pairs, outcome.replies):
                    assert reply.distance == undirected_distance(x, y)
                    assert len(reply.path) == reply.distance
        return True

    assert run(scenario())


def test_server_distance_only_burst_micro_batches():
    async def scenario():
        engine = RouteQueryEngine(2, 6)
        config = ServerConfig(batch_size=8, batch_deadline=0.01)
        async with RouteQueryServer(engine, config) as server:
            async with RouteServiceClient("127.0.0.1", server.port, d=2,
                                          pool_size=2) as client:
                pairs = _pairs(2, 6, 120, seed=7)
                outcome = await client.query_many(pairs, want_path=False)
                assert outcome.ok_count == len(pairs)
                for (x, y), reply in zip(pairs, outcome.replies):
                    assert reply.distance == undirected_distance(x, y)
                    assert reply.path == []
                snapshot = await client.stats()
        counters = snapshot["counters"]
        assert counters["engine.batched"] == 120
        # Coalescing must actually happen: fewer flushes than queries.
        assert 0 < counters["engine.batch_flushes"] < 120
        group = snapshot["histograms"]["server.batch_group_size"]
        assert group["max"] > 1.0
        return True

    assert run(scenario())


def test_server_table_tier_serves_whole_burst():
    async def scenario():
        table = CompiledRouteTable.compile(2, 6, workers=1)
        engine = RouteQueryEngine(2, 6, table=table)
        async with RouteQueryServer(engine) as server:
            async with RouteServiceClient("127.0.0.1", server.port,
                                          d=2) as client:
                pairs = _pairs(2, 6, 80, seed=8)
                outcome = await client.query_many(pairs)
                assert outcome.ok_count == len(pairs)
                snapshot = await client.stats()
        assert snapshot["counters"]["engine.table_lookups"] == 80
        assert snapshot["counters"].get("engine.planned", 0) == 0
        return True

    assert run(scenario())


def test_server_rejects_wrong_graph_and_frame_type():
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with RouteServiceClient("127.0.0.1", server.port,
                                          d=2) as client:
                # k=4 words against a k=6 server: UNSUPPORTED.
                reply = await client.query((0, 1, 1, 0), (1, 1, 0, 0))
                assert not reply.ok
                assert reply.error_code == ErrorCode.UNSUPPORTED
                # A REPLY frame sent *to* the server: UNSUPPORTED.
                connection = await client._connection(0)
                connection.writer.write(encode_reply(77, 1, None))
                await connection.writer.drain()
                (frame,) = await client._read_frames(
                    connection.reader, connection.decoder)
                assert frame.frame_type == FrameType.ERROR
                code, _ = decode_error(frame)
                assert code == ErrorCode.UNSUPPORTED
        return True

    assert run(scenario())


def test_server_overload_rejects_but_stays_responsive():
    async def scenario():
        engine = RouteQueryEngine(2, 6, cache_size=0)
        config = ServerConfig(max_pending=16)
        async with RouteQueryServer(engine, config) as server:
            async with RouteServiceClient("127.0.0.1", server.port,
                                          d=2) as client:
                pairs = _pairs(2, 6, 400, seed=9)
                outcome = await client.query_many(pairs, window=0)
                # Every query got an answer: a reply or an explicit error.
                assert len(outcome.replies) == len(pairs)
                rejected = outcome.error_counts.get("OVERLOADED", 0)
                assert rejected > 0
                assert outcome.ok_count + rejected == len(pairs)
                # The server still answers stats after the storm, and the
                # admission queue never grew past its bound.
                snapshot = await client.stats()
                assert snapshot["counters"]["server.queue_peak"] <= 16
                assert (snapshot["counters"]["server.errors.overloaded"]
                        == rejected)
        return True

    assert run(scenario())


def test_server_request_timeout_fails_stale_queries():
    async def scenario():
        engine = RouteQueryEngine(2, 6)
        config = ServerConfig(request_timeout=0.0)
        async with RouteQueryServer(engine, config) as server:
            async with RouteServiceClient("127.0.0.1", server.port,
                                          d=2) as client:
                outcome = await client.query_many(_pairs(2, 6, 10, seed=10))
                assert outcome.error_counts.get("TIMEOUT", 0) == 10
                snapshot = await client.stats()
        assert snapshot["counters"]["server.timed_out"] == 10
        return True

    assert run(scenario())


def test_server_drains_cleanly_mid_burst():
    async def scenario():
        engine = RouteQueryEngine(2, 6)
        async with RouteQueryServer(engine) as server:
            client = RouteServiceClient("127.0.0.1", server.port, d=2)
            pairs = _pairs(2, 6, 300, seed=11)
            burst = asyncio.create_task(
                client.query_many(pairs, want_path=False))
            await asyncio.sleep(0.01)
            await server.stop()
            outcome = await burst
            await client.close()
        # Every single query was answered: replies for everything admitted
        # before the drain, SHUTTING_DOWN errors for the rest.  Nothing
        # was silently dropped.
        assert len(outcome.replies) == len(pairs)
        late = outcome.error_counts.get("SHUTTING_DOWN", 0)
        assert outcome.ok_count + late == len(pairs)
        return True

    assert run(scenario())


def test_server_latency_histogram_populates():
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with RouteServiceClient("127.0.0.1", server.port,
                                          d=2) as client:
                await client.query_many(_pairs(2, 6, 50, seed=12))
                snapshot = await client.stats()
        latency = snapshot["histograms"]["server.latency_seconds"]
        assert latency["count"] == 50.0
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        return True

    assert run(scenario())


def test_blocking_helpers_roundtrip():
    async def _server():
        server = RouteQueryServer(RouteQueryEngine(2, 5))
        port = await server.start()
        return server, port

    # Drive the blocking helpers from a worker thread so they can own
    # their own event loops while the server runs in this one.
    async def scenario():
        server, port = await _server()
        try:
            x, y = (0, 1, 1, 0, 1), (1, 1, 0, 1, 0)

            def blocking_calls():
                reply = query_once("127.0.0.1", port, x, y, 2)
                outcome = run_burst("127.0.0.1", port, _pairs(2, 5, 30),
                                    2, pool_size=2)
                snapshot = fetch_stats("127.0.0.1", port)
                return reply, outcome, snapshot

            reply, outcome, snapshot = await asyncio.get_running_loop()\
                .run_in_executor(None, blocking_calls)
            assert reply.ok and reply.distance == undirected_distance(x, y)
            assert outcome.ok_count == 30
            assert snapshot["counters"]["server.replies"] == 31
        finally:
            await server.stop()
        return True

    assert run(scenario())


def test_client_requires_alphabet_size():
    client = RouteServiceClient("127.0.0.1", 1)
    with pytest.raises(ServiceError):
        run(client.query((0, 1), (1, 0)))
    with pytest.raises(ServiceError):
        RouteServiceClient("127.0.0.1", 1, pool_size=0)


def test_query_outcome_accounting():
    outcome = QueryOutcome(
        replies=[
            RouteReply(2, []),
            RouteReply(None, None, ErrorCode.OVERLOADED, "full"),
            RouteReply(None, None, ErrorCode.OVERLOADED, "full"),
        ],
        elapsed=0.5,
    )
    assert outcome.ok_count == 1
    assert outcome.error_counts == {"OVERLOADED": 2}
    assert outcome.qps == 6.0


def test_server_slo_violation_counter():
    async def scenario():
        # A sub-microsecond budget: every reply violates it.
        async with RouteQueryServer(
            RouteQueryEngine(2, 4), ServerConfig(slo_ms=1e-6)
        ) as server:
            async with RouteServiceClient(
                "127.0.0.1", server.port, d=2
            ) as client:
                outcome = await client.query_many(_pairs(2, 4, 50, seed=1))
            assert outcome.ok_count == 50
            snapshot = server.snapshot()
            assert snapshot["counters"]["server.slo_violations"] == 50
        # A one-minute budget: the counter exists but stays zero.
        async with RouteQueryServer(
            RouteQueryEngine(2, 4), ServerConfig(slo_ms=60000.0)
        ) as server:
            async with RouteServiceClient(
                "127.0.0.1", server.port, d=2
            ) as client:
                await client.query_many(_pairs(2, 4, 20, seed=2))
            snapshot = server.snapshot()
            assert snapshot["counters"]["server.slo_violations"] == 0

    run(scenario())


# ----------------------------------------------------------------------
# Wire-level hardening (E24 satellites)
# ----------------------------------------------------------------------


def test_decoder_enforces_max_frame_bytes_cap():
    """MAX_FRAME_BYTES is a hard allocation ceiling, not advice."""
    over = struct.pack("!I", MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError):
        FrameDecoder().feed(over)
    # Exactly at the cap: a legal (if huge) pending frame, no blow-up.
    decoder = FrameDecoder()
    assert decoder.feed(struct.pack("!I", MAX_FRAME_BYTES)) == []
    assert decoder.pending_bytes == 4
    # The encoder refuses to build what the decoder would reject.
    with pytest.raises(ProtocolError):
        encode_frame(FrameType.STATS_REPLY, 1, b"x" * MAX_FRAME_BYTES)


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_decoder_survives_arbitrary_mangling(data):
    """Fuzz: corrupt/truncate/reorder a valid stream however you like —
    the decoder yields clean frames or raises ProtocolError.  It never
    hangs, never dies with another exception type, and never buffers
    more than it was fed."""
    frames = data.draw(st.lists(st.sampled_from([
        encode_stats_request(1),
        encode_query(2, 2, (0, 1), (1, 0)),
        encode_reply(3, 1, [RoutingStep(Direction.LEFT, 0)]),
        encode_error(4, ErrorCode.TIMEOUT, "late"),
    ]), min_size=1, max_size=4))
    stream = bytearray(b"".join(frames))
    for _ in range(data.draw(st.integers(1, 5))):
        if not stream:
            break
        op = data.draw(st.sampled_from(
            ["flip", "truncate", "insert", "delete", "swap"]))
        if op == "flip":
            i = data.draw(st.integers(0, len(stream) - 1))
            stream[i] ^= data.draw(st.integers(1, 255))
        elif op == "truncate":
            stream = stream[:data.draw(st.integers(0, len(stream)))]
        elif op == "insert":
            i = data.draw(st.integers(0, len(stream)))
            stream[i:i] = data.draw(st.binary(min_size=1, max_size=8))
        elif op == "delete":
            i = data.draw(st.integers(0, len(stream) - 1))
            n = data.draw(st.integers(1, min(8, len(stream) - i)))
            del stream[i:i + n]
        elif len(stream) >= 2:
            i = data.draw(st.integers(0, len(stream) - 2))
            j = data.draw(st.integers(i + 1, len(stream) - 1))
            stream[i], stream[j] = stream[j], stream[i]
    decoder = FrameDecoder()
    fed = 0
    try:
        pos = 0
        while pos < len(stream):
            step = data.draw(st.integers(1, len(stream) - pos))
            chunk = bytes(stream[pos:pos + step])
            pos += step
            fed += len(chunk)
            for frame in decoder.feed(chunk):
                # A surfaced frame's body either parses or raises
                # ProtocolError — nothing else escapes.
                try:
                    if frame.frame_type == FrameType.QUERY:
                        decode_query(frame)
                    elif frame.frame_type == FrameType.REPLY:
                        decode_reply(frame)
                    elif frame.frame_type == FrameType.ERROR:
                        decode_error(frame)
                    elif frame.frame_type == FrameType.STATS_REPLY:
                        decode_stats_reply(frame)
                except ProtocolError:
                    pass
    except ProtocolError:
        return  # clean rejection of a mangled stream: accepted outcome
    assert decoder.pending_bytes <= fed


def test_server_logs_and_closes_on_midframe_disconnect():
    """Satellite 1: a peer vanishing mid-frame or mid-reply is logged
    and closed — no handler task dies with an unretrieved exception."""

    async def scenario():
        problems = []
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, context: problems.append(context))
        try:
            async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
                query = encode_query(1, 2, (0,) * 6, (1,) * 6)

                # Disconnect mid-frame: half a query, then a clean FIN.
                _, half = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                half.write(query[:7])
                await half.drain()
                half.close()

                # Disconnect mid-reply: full query, then an instant RST
                # so the server's reply write hits a dead socket.
                _, gone = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                gone.write(query)
                await gone.drain()
                gone.transport.abort()

                await asyncio.sleep(0.2)

                # The server shrugged both off and still answers.
                async with RouteServiceClient(
                    "127.0.0.1", server.port, d=2
                ) as client:
                    outcome = await client.query_many(_pairs(2, 6, 10, 42))
                assert outcome.ok_count == 10
        finally:
            loop.set_exception_handler(None)
        gc.collect()
        await asyncio.sleep(0)
        gc.collect()
        unretrieved = [
            context for context in problems
            if "never retrieved" in str(context.get("message", ""))
        ]
        assert not unretrieved, unretrieved
        return True

    assert run(scenario())


def test_server_read_timeout_kills_slow_loris():
    """A connection stalled mid-frame is reaped after read_timeout."""

    async def scenario():
        config = ServerConfig(read_timeout=0.2)
        async with RouteQueryServer(RouteQueryEngine(2, 6), config) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            query = encode_query(1, 2, (0,) * 6, (1,) * 6)
            writer.write(query[:5])  # partial frame, then silence
            await writer.drain()
            data = await asyncio.wait_for(reader.read(), timeout=3.0)
            assert data == b""  # the server hung up on us
            counters = server.snapshot()["counters"]
            assert counters.get("server.read_timeouts", 0) >= 1
            writer.close()
        return True

    assert run(scenario())


def test_server_max_connections_sheds_excess():
    """Admission control: connection N+1 is closed at accept."""

    async def scenario():
        config = ServerConfig(max_connections=1)
        async with RouteQueryServer(RouteQueryEngine(2, 6), config) as server:
            reader1, writer1 = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer1.write(encode_query(1, 2, (0,) * 6, (1,) * 6))
            await writer1.drain()
            await reader1.readexactly(4)  # conn 1 is live and serving
            reader2, writer2 = await asyncio.open_connection(
                "127.0.0.1", server.port)
            data = await asyncio.wait_for(reader2.read(), timeout=3.0)
            assert data == b""  # shed without a byte of service
            counters = server.snapshot()["counters"]
            assert counters.get("server.conn_rejected", 0) >= 1
            writer1.close()
            writer2.close()
        return True

    assert run(scenario())


def test_server_quarantines_malformed_frames():
    """A corrupt frame costs that connection its stream — never the
    server, never its other clients."""

    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            bad = bytearray(encode_stats_request(1))
            bad[4] = 0xEE  # unknown frame type
            writer.write(bytes(bad))
            await writer.drain()
            data = await asyncio.wait_for(reader.read(), timeout=3.0)
            assert data == b""  # quarantined
            counters = server.snapshot()["counters"]
            assert counters.get("server.malformed_frames", 0) >= 1
            writer.close()

            # The server itself is unhurt.
            async with RouteServiceClient(
                "127.0.0.1", server.port, d=2
            ) as client:
                outcome = await client.query_many(_pairs(2, 6, 10, 7))
            assert outcome.ok_count == 10
        return True

    assert run(scenario())


def test_fetch_stats_retries_through_connection_resets():
    """A STATS round trip is idempotent, so fetch_stats retries resets.

    The fake server RSTs its first two connections mid-handshake (the
    SO_LINGER trick forces a real TCP reset) and only answers the STATS
    frame on the third; the default retry budget must ride that out,
    while a zero-retry budget against a permanently hostile server must
    still surface the transport error.
    """
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]
    resets_left = [2]

    def serve():
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            if resets_left[0] > 0:
                resets_left[0] -= 1
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
                conn.close()
                continue
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = conn.recv(1 << 16)
                if not data:
                    break
                frames = decoder.feed(data)
            if frames:
                conn.sendall(encode_stats_reply(
                    frames[0].request_id,
                    {"counters": {"server.replies": 7}}))
            conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        snapshot = fetch_stats("127.0.0.1", port, retries=3, backoff=0.01)
        assert snapshot["counters"]["server.replies"] == 7

        resets_left[0] = 10 ** 9
        with pytest.raises((ConnectionError, OSError, ServiceError)):
            fetch_stats("127.0.0.1", port, retries=1, backoff=0.01)
    finally:
        listener.close()
        thread.join(5)
