"""Tests for fault tolerance (Pradhan–Reddy claim, experiment E7)."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.graphs.debruijn import undirected_graph
from repro.network.faults import (
    FaultAwareRouter,
    is_connected_after_failures,
    survives_failures,
    vertex_disjoint_paths,
)
from repro.network.router import BidirectionalOptimalRouter, TrivialRouter
from repro.network.simulator import Simulator
from tests.conftest import all_words, random_words


# ----------------------------------------------------------------------
# Connectivity under failures
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2)])
def test_any_single_pair_survives_d_minus_1_failures(d, k):
    """Exhaustive over small graphs: removing any d-1 vertices keeps the
    undirected network connected (the cited Pradhan-Reddy tolerance)."""
    g = undirected_graph(d, k)
    words = all_words(d, k)
    for failed in combinations(words, d - 1):
        assert is_connected_after_failures(g, failed), failed


def test_d_failures_can_disconnect():
    # d = 2: killing both neighbors that separate a corner can cut DG(2, 3).
    # Vertex 000 has neighbors {001, 100}; killing them isolates it.
    g = undirected_graph(2, 3)
    assert not is_connected_after_failures(g, [(0, 0, 1), (1, 0, 0)])


def test_survives_failures_specific_pair():
    g = undirected_graph(2, 3)
    assert survives_failures(g, (0, 0, 1), (1, 1, 1), [(0, 1, 1)])
    assert not survives_failures(g, (0, 0, 0), (1, 1, 1), [(0, 0, 1), (1, 0, 0)])


def test_is_connected_with_nearly_all_failed():
    g = undirected_graph(2, 2)
    words = all_words(2, 2)
    assert is_connected_after_failures(g, words[:-1])  # one survivor


# ----------------------------------------------------------------------
# Vertex-disjoint paths
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2), (3, 3)])
def test_at_least_d_minus_1_disjoint_paths(d, k):
    g = undirected_graph(d, k)
    pairs = [(x, y) for x in random_words(d, k, 6, seed=1) for y in random_words(d, k, 6, seed=2)]
    for x, y in pairs:
        if x == y:
            continue
        paths = vertex_disjoint_paths(g, x, y)
        assert len(paths) >= d - 1, (x, y, paths)
        # Internal disjointness.
        interiors = [set(p[1:-1]) for p in paths]
        for a, b in combinations(range(len(interiors)), 2):
            assert not (interiors[a] & interiors[b])
        for p in paths:
            assert p[0] == x and p[-1] == y
            for u, v in zip(p, p[1:]):
                assert g.has_edge(u, v)


def test_disjoint_paths_max_paths_cap():
    g = undirected_graph(2, 4)
    paths = vertex_disjoint_paths(g, (0, 0, 0, 1), (1, 0, 1, 1), max_paths=2)
    assert len(paths) <= 2


def test_disjoint_paths_between_adjacent_vertices_include_direct_edge():
    g = undirected_graph(2, 3)
    paths = vertex_disjoint_paths(g, (0, 0, 1), (0, 1, 1))
    assert [(0, 0, 1), (0, 1, 1)] in paths
    assert len(paths) >= 2  # the direct edge plus at least one detour


# ----------------------------------------------------------------------
# Fault-aware routing
# ----------------------------------------------------------------------


def test_fault_aware_router_avoids_failed_set():
    g = undirected_graph(2, 3)
    healthy = FaultAwareRouter(g).plan((0, 0, 1), (1, 1, 1))
    router = FaultAwareRouter(g, failed={(0, 1, 1)})
    path = router.plan((0, 0, 1), (1, 1, 1))
    from repro.core.routing import path_words

    visited = path_words((0, 0, 1), path, 2)
    assert (0, 1, 1) not in visited
    assert visited[-1] == (1, 1, 1)
    assert len(path) >= len(healthy)


def test_fault_aware_router_raises_when_cut_off():
    from repro.exceptions import RoutingError

    g = undirected_graph(2, 3)
    router = FaultAwareRouter(g, failed={(0, 0, 1), (1, 0, 0)})
    with pytest.raises(RoutingError):
        router.plan((0, 0, 0), (1, 1, 1))


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------


def test_message_through_failed_site_is_dropped_without_rerouting():
    sim = Simulator(2, 3, reroute_on_failure=False)
    sim.fail_node((0, 1, 1), at=0.0)
    # 001 -> 111 shortest route passes 011.
    sim.send((0, 0, 1), (1, 1, 1), TrivialRouter(), at=1.0)
    stats = sim.run()
    assert stats.delivered_count + stats.dropped_count == 1


def test_reroute_on_failure_delivers_around_fault():
    sim = Simulator(2, 3, reroute_on_failure=True)
    router = BidirectionalOptimalRouter(use_wildcards=False)
    base_path = router.plan((0, 0, 1), (1, 1, 1))
    from repro.core.routing import path_words

    midpoint = path_words((0, 0, 1), base_path, 2)[1]
    sim.fail_node(midpoint, at=0.0)
    message = sim.send((0, 0, 1), (1, 1, 1), router, at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 1
    assert stats.rerouted >= 1
    assert midpoint not in message.trace


def test_failed_destination_drops_message():
    sim = Simulator(2, 3, reroute_on_failure=True)
    sim.fail_node((1, 1, 1), at=0.0)
    sim.send((0, 0, 1), (1, 1, 1), BidirectionalOptimalRouter(), at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 0
    assert stats.dropped_count == 1


def test_recovery_restores_delivery():
    sim = Simulator(2, 3, reroute_on_failure=False)
    sim.fail_node((1, 1, 1), at=0.0)
    sim.recover_node((1, 1, 1), at=10.0)
    sim.send((0, 0, 1), (1, 1, 1), BidirectionalOptimalRouter(), at=20.0)
    stats = sim.run()
    assert stats.delivered_count == 1


def test_messages_before_failure_unaffected():
    sim = Simulator(2, 3, reroute_on_failure=False)
    sim.send((0, 0, 1), (1, 1, 1), BidirectionalOptimalRouter(), at=0.0)
    sim.fail_node((1, 1, 1), at=50.0)
    stats = sim.run()
    assert stats.delivered_count == 1


def test_random_fault_storm_accounting(rng):
    d, k = 2, 4
    sim = Simulator(d, k, reroute_on_failure=True)
    words = all_words(d, k)
    for w in rng.sample(words, 3):
        sim.fail_node(w, at=0.0)
    router = BidirectionalOptimalRouter()
    sent = 0
    for _ in range(100):
        x, y = rng.choice(words), rng.choice(words)
        if x != y:
            sim.send(x, y, router, at=float(rng.randrange(50)))
            sent += 1
    stats = sim.run()
    assert stats.delivered_count + stats.dropped_count == sent
    for message in stats.delivered:
        assert message.trace[-1] == message.destination
