"""Tests for the distance functions (Property 1 and Theorem 2) vs BFS."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    UndirectedWitness,
    directed_distance,
    directed_distance_brute,
    undirected_distance,
    undirected_distance_brute,
    undirected_witness,
    undirected_witness_matching,
    undirected_witness_suffix_tree,
)
from repro.exceptions import InvalidWordError
from tests.conftest import SMALL_GRAPHS, all_words, bfs_oracle

WORD_PAIRS = st.integers(min_value=2, max_value=3).flatmap(
    lambda d: st.integers(min_value=1, max_value=14).flatmap(
        lambda k: st.tuples(
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
        )
    )
)


# ----------------------------------------------------------------------
# Property 1: directed distance
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", SMALL_GRAPHS, ids=lambda v: str(v))
def test_directed_distance_equals_bfs_exhaustive(d, k):
    for x in all_words(d, k):
        oracle = bfs_oracle(x, d, directed=True)
        for y in all_words(d, k):
            assert directed_distance(x, y) == oracle[y]


def test_directed_distance_known_values():
    assert directed_distance((0, 0, 0), (1, 1, 1)) == 3  # diameter pair
    assert directed_distance((0, 1, 1), (1, 1, 0)) == 1
    assert directed_distance((0, 1, 0), (0, 1, 0)) == 0


def test_directed_distance_is_asymmetric():
    x, y = (0, 1, 1), (1, 1, 0)
    assert directed_distance(x, y) != directed_distance(y, x)


@given(WORD_PAIRS)
@settings(max_examples=300)
def test_directed_distance_matches_brute(pair):
    x, y = pair
    assert directed_distance(x, y) == directed_distance_brute(x, y)


@given(WORD_PAIRS)
@settings(max_examples=200)
def test_directed_distance_bounds(pair):
    x, y = pair
    dist = directed_distance(x, y)
    assert 0 <= dist <= len(x)
    assert (dist == 0) == (x == y)


# ----------------------------------------------------------------------
# Theorem 2: undirected distance (three implementations)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", SMALL_GRAPHS, ids=lambda v: str(v))
@pytest.mark.parametrize("method", ["matching", "suffix_tree", "brute"])
def test_undirected_distance_equals_bfs_exhaustive(d, k, method):
    for x in all_words(d, k):
        oracle = bfs_oracle(x, d, directed=False)
        for y in all_words(d, k):
            assert undirected_distance(x, y, method) == oracle[y], (x, y)


@given(WORD_PAIRS)
@settings(max_examples=300, deadline=None)
def test_undirected_methods_agree(pair):
    x, y = pair
    brute = undirected_distance_brute(x, y)
    assert undirected_distance(x, y, "matching") == brute
    assert undirected_distance(x, y, "suffix_tree") == brute


@given(WORD_PAIRS)
@settings(max_examples=300, deadline=None)
def test_undirected_distance_is_symmetric(pair):
    x, y = pair
    assert undirected_distance(x, y) == undirected_distance(y, x)


@given(WORD_PAIRS)
@settings(max_examples=200, deadline=None)
def test_undirected_at_most_directed_and_diameter(pair):
    x, y = pair
    undirected = undirected_distance(x, y)
    assert undirected <= directed_distance(x, y)
    assert 0 <= undirected <= len(x)
    assert (undirected == 0) == (x == y)


@given(
    st.integers(min_value=1, max_value=8).flatmap(
        lambda k: st.tuples(
            *[st.lists(st.integers(0, 1), min_size=k, max_size=k).map(tuple) for _ in range(3)]
        )
    )
)
@settings(max_examples=200, deadline=None)
def test_undirected_triangle_inequality(triple):
    x, y, z = triple
    assert undirected_distance(x, z) <= undirected_distance(x, y) + undirected_distance(y, z)


def test_undirected_known_values():
    # From the verified DG(2, 3): 001 -> 111 goes 001 -> 011 -> 111.
    assert undirected_distance((0, 0, 1), (1, 1, 1)) == 2
    assert undirected_distance((0, 0, 0), (1, 1, 1)) == 3
    assert undirected_distance((0, 1, 0), (1, 0, 1)) == 1


# ----------------------------------------------------------------------
# Witnesses
# ----------------------------------------------------------------------


@given(WORD_PAIRS)
@settings(max_examples=300, deadline=None)
def test_witness_methods_agree_on_distance(pair):
    x, y = pair
    wm = undirected_witness_matching(x, y)
    ws = undirected_witness_suffix_tree(x, y)
    assert wm.distance == ws.distance


@given(WORD_PAIRS)
@settings(max_examples=300, deadline=None)
def test_witness_is_internally_consistent(pair):
    x, y = pair
    k = len(x)
    for witness in (undirected_witness_matching(x, y), undirected_witness_suffix_tree(x, y)):
        if witness.case == "trivial":
            assert witness.distance == k
            continue
        assert 1 <= witness.theta
        assert 1 <= witness.i <= k and 1 <= witness.j <= k
        if witness.case == "l":
            # x_i..x_{i+θ-1} == y_{j-θ+1}..y_j (1-based, paper eq. (8))
            assert x[witness.i - 1 : witness.i - 1 + witness.theta] == \
                y[witness.j - witness.theta : witness.j]
            assert witness.distance == 2 * k - 1 + witness.i - witness.j - witness.theta
        else:
            # x_{i-θ+1}..x_i == y_j..y_{j+θ-1} (paper eq. (9))
            assert x[witness.i - witness.theta : witness.i] == \
                y[witness.j - 1 : witness.j - 1 + witness.theta]
            assert witness.distance == 2 * k - 1 - witness.i + witness.j - witness.theta


def test_witness_trivial_for_diameter_pair():
    w = undirected_witness((0, 0, 0), (1, 1, 1))
    assert w == UndirectedWitness(3, "trivial")


def test_witness_auto_dispatch():
    x, y = (0, 1, 0, 1), (1, 1, 0, 0)
    assert undirected_witness(x, y, "auto").distance == undirected_distance(x, y, "brute")


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        undirected_distance((0, 1), (1, 0), "nonsense")


def test_length_mismatch_rejected():
    with pytest.raises(InvalidWordError):
        undirected_distance((0, 1), (1, 0, 1))
    with pytest.raises(InvalidWordError):
        directed_distance((0, 1), (1, 0, 1))


def test_empty_words_rejected():
    with pytest.raises(InvalidWordError):
        undirected_distance((), ())


@pytest.mark.parametrize("d,k", [(2, 4), (3, 3)])
@pytest.mark.parametrize("directed", [True, False])
def test_distances_from_matches_pair_functions(d, k, directed):
    from repro.core.distance import distances_from

    fn = directed_distance if directed else undirected_distance
    for x in [(0,) * k, tuple(range(k)) if k <= d else (0, 1) * (k // 2) + (0,) * (k % 2)]:
        x = tuple(v % d for v in x)
        row = distances_from(x, d, directed=directed)
        assert len(row) == d**k
        for y, value in row.items():
            assert value == fn(x, y)
