"""Tests for the multiprocess sharded BFS engine (repro.core.parallel).

The load-bearing property: the parallel sharded fills are *byte
identical* to the serial in-process fills and to the independent
engines they shadow (``core.batch`` row by row, ``analysis.exact``
matrix by matrix, the conftest BFS oracle pair by pair).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import distance_matrix
from repro.core.packed import PackedSpace
from repro.core.parallel import (
    ACTION_AT_DESTINATION,
    available_cpus,
    chunk_ranges,
    compile_table_buffers,
    default_workers,
    distance_matrix_flat,
    parallel_distance_matrix,
    sharded_rows,
)
from repro.exceptions import InvalidParameterError

from tests.conftest import SMALL_GRAPHS, all_words, bfs_oracle


# ----------------------------------------------------------------------
# Work partitioning
# ----------------------------------------------------------------------


def test_chunk_ranges_cover_exactly():
    for total in (0, 1, 5, 64, 65, 1000):
        for chunk in (1, 3, 64, 1000):
            ranges = chunk_ranges(total, chunk)
            covered = [i for start, stop in ranges for i in range(start, stop)]
            assert covered == list(range(total))


def test_chunk_ranges_reject_bad_size():
    with pytest.raises(InvalidParameterError):
        chunk_ranges(10, 0)


def test_default_workers_bounded():
    assert 1 <= default_workers() <= max(1, available_cpus())


# ----------------------------------------------------------------------
# Parallel == serial, byte for byte
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", SMALL_GRAPHS, ids=lambda p: str(p))
@pytest.mark.parametrize("directed", [False, True], ids=["bi", "uni"])
def test_parallel_matrix_matches_serial(d, k, directed):
    serial = distance_matrix_flat(d, k, directed=directed, workers=1)
    parallel = distance_matrix_flat(d, k, directed=directed, workers=2,
                                    chunk_size=3)
    assert bytes(serial) == bytes(parallel)


@pytest.mark.parametrize("directed", [False, True], ids=["bi", "uni"])
def test_parallel_table_matches_serial(directed):
    for d, k in ((2, 4), (3, 3)):
        serial = compile_table_buffers(d, k, directed=directed, workers=1)
        parallel = compile_table_buffers(d, k, directed=directed, workers=3,
                                         chunk_size=1)
        assert bytes(serial[0]) == bytes(parallel[0])
        assert bytes(serial[1]) == bytes(parallel[1])


def test_chunk_size_one_and_oversubscription():
    """More workers than chunks, and one-row chunks, both stay correct."""
    reference = distance_matrix_flat(2, 3, workers=1)
    assert bytes(distance_matrix_flat(2, 3, workers=16, chunk_size=1)) == \
        bytes(reference)


# ----------------------------------------------------------------------
# Cross-engine equality
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", SMALL_GRAPHS, ids=lambda p: str(p))
@pytest.mark.parametrize("directed", [False, True], ids=["bi", "uni"])
def test_matrix_matches_batch_engine(d, k, directed):
    rows = parallel_distance_matrix(d, k, directed=directed, workers=2)
    batch_rows = distance_matrix(d, k, directed=directed)
    assert [bytes(r) for r in rows] == [bytes(r) for r in batch_rows]


@pytest.mark.parametrize("directed", [False, True], ids=["bi", "uni"])
def test_matrix_matches_exact_numpy(directed):
    """The sharded kernel agrees with analysis.exact for both orientations."""
    exact = pytest.importorskip("repro.analysis.exact")
    for d, k in ((2, 4), (3, 3)):
        n = d**k
        flat = np.frombuffer(
            bytes(distance_matrix_flat(d, k, directed=directed, workers=2)),
            dtype=np.uint8).reshape(n, n).view(np.int8)
        if directed:
            reference = exact.directed_distance_matrix(d, k)
        else:
            reference = exact.undirected_distance_matrix(d, k)
        assert (flat == reference).all()


def test_exact_directed_bfs_delegates_correctly():
    """analysis.exact's BFS oracle (now the shared kernel) still matches
    its Property-1 closed-form twin."""
    exact = pytest.importorskip("repro.analysis.exact")
    for d, k in ((2, 5), (3, 3), (4, 2)):
        bfs = exact.directed_bfs_distance_matrix(d, k)
        closed = exact.directed_distance_matrix(d, k)
        assert bfs.dtype == np.int8
        assert (bfs == closed).all()


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2)], ids=lambda p: str(p))
@pytest.mark.parametrize("directed", [False, True], ids=["bi", "uni"])
def test_table_rows_against_bfs_oracle(d, k, directed):
    """Destination-major distance rows equal the conftest shift-BFS."""
    space = PackedSpace(d, k)
    n = d**k
    dist, act = compile_table_buffers(d, k, directed=directed, workers=1)
    for y in all_words(d, k):
        py = space.pack(y)
        # Reverse orientation: row py holds distances *to* y, which for
        # the directed case is d(x, y) = oracle-from-x ... so check via
        # the oracle from each source instead.
        for x in all_words(d, k):
            px = space.pack(x)
            expected = bfs_oracle(x, d, directed).get(y)
            got = dist[py * n + px]
            assert got == (0xFF if expected is None else expected)
            if x == y:
                assert act[py * n + px] == ACTION_AT_DESTINATION


def test_sharded_rows_rejects_unknown_kind():
    with pytest.raises(InvalidParameterError):
        sharded_rows("nonsense", 2, 3)
