"""Tests for the five-field message and its wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import Direction, RoutingStep
from repro.exceptions import WirePathError
from repro.network.message import (
    WILDCARD_BYTE,
    ControlCode,
    Message,
    decode_message,
    decode_path,
    decode_word,
    encode_message,
    encode_path,
    encode_word,
)

STEPS = st.lists(
    st.tuples(st.sampled_from([Direction.LEFT, Direction.RIGHT]),
              st.one_of(st.none(), st.integers(0, 9))).map(lambda t: RoutingStep(*t)),
    min_size=0,
    max_size=12,
)


def _message(path=None, payload=None):
    return Message(
        ControlCode.DATA,
        (0, 1, 1),
        (1, 1, 0),
        path if path is not None else [RoutingStep(Direction.LEFT, 0)],
        payload,
    )


# ----------------------------------------------------------------------
# Message bookkeeping
# ----------------------------------------------------------------------


def test_message_ids_are_unique():
    assert _message().message_id != _message().message_id


def test_hop_count_counts_trace_minus_source():
    m = _message()
    assert m.hop_count == 0
    m.trace.extend([(0, 1, 1), (1, 1, 0)])
    assert m.hop_count == 1


def test_latency_none_until_delivery():
    m = _message()
    m.injected_at = 3.0
    assert m.latency is None
    m.delivered_at = 7.5
    assert m.latency == 4.5


def test_remaining_hops_tracks_path():
    m = _message(path=[RoutingStep(Direction.LEFT, 0), RoutingStep(Direction.RIGHT, 1)])
    assert m.remaining_hops == 2


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------


def test_word_codec_roundtrip():
    assert decode_word(encode_word((0, 5, 254))) == (0, 5, 254)


def test_word_codec_rejects_oversized_digit():
    with pytest.raises(WirePathError):
        encode_word((0, 255))


@given(STEPS)
@settings(max_examples=200)
def test_path_codec_roundtrip(steps):
    assert decode_path(encode_path(steps)) == steps


def test_path_codec_wildcard_byte():
    blob = encode_path([RoutingStep(Direction.RIGHT, None)])
    assert blob == bytes([1, 0xFF])


def test_decode_path_rejects_odd_blob():
    with pytest.raises(WirePathError):
        decode_path(b"\x00")


def test_decode_path_rejects_bad_type_byte():
    with pytest.raises(WirePathError):
        decode_path(bytes([7, 0]))


def test_encode_path_rejects_oversized_digit():
    with pytest.raises(WirePathError):
        encode_path([RoutingStep(Direction.LEFT, 255)])


@pytest.mark.parametrize("payload", [None, b"abc", "héllo"])
def test_message_codec_roundtrip(payload):
    m = _message(
        path=[RoutingStep(Direction.LEFT, 1), RoutingStep(Direction.RIGHT, None)],
        payload=payload,
    )
    control, source, destination, path, body = decode_message(encode_message(m))
    assert control == ControlCode.DATA
    assert source == (0, 1, 1)
    assert destination == (1, 1, 0)
    assert path == m.routing_path
    if payload is None:
        assert body == b""
    elif isinstance(payload, bytes):
        assert body == payload
    else:
        assert body.decode("utf-8") == payload


def test_message_codec_rejects_object_payload():
    with pytest.raises(WirePathError):
        encode_message(_message(payload={"not": "bytes"}))


def test_decode_message_rejects_truncation():
    blob = encode_message(_message())
    with pytest.raises(WirePathError):
        decode_message(blob[:4])
    with pytest.raises(WirePathError):
        decode_message(b"\x00")


def test_control_codes_cover_paper_roles():
    assert {c.name for c in ControlCode} == {"DATA", "ACK", "PING", "BROADCAST"}


# ----------------------------------------------------------------------
# Randomized round-trips over the full wire alphabet, and the 0xFF edge
# ----------------------------------------------------------------------

FULL_RANGE_STEPS = st.lists(
    st.tuples(
        st.sampled_from([Direction.LEFT, Direction.RIGHT]),
        st.one_of(st.none(), st.integers(0, WILDCARD_BYTE - 1)),
    ).map(lambda t: RoutingStep(*t)),
    min_size=0,
    max_size=16,
)


@given(FULL_RANGE_STEPS)
@settings(max_examples=200)
def test_path_codec_roundtrip_full_digit_range(steps):
    """Digits may use the whole 0..254 wire range, wildcards included."""
    blob = encode_path(steps)
    assert len(blob) == 2 * len(steps)
    assert decode_path(blob) == steps


@given(st.integers(2, WILDCARD_BYTE), st.data())
@settings(max_examples=200)
def test_word_codec_roundtrip_randomized(d, data):
    word = tuple(data.draw(st.lists(
        st.integers(0, d - 1), min_size=1, max_size=12)))
    assert decode_word(encode_word(word)) == word


@pytest.mark.parametrize("d", [2, 10, 255])
def test_word_codec_boundary_digit_d_minus_1(d):
    """The largest in-alphabet digit d-1 survives; for d=255 that is 254,
    the last byte before the wildcard marker."""
    word = (0, d - 1, d - 1)
    assert decode_word(encode_word(word)) == word
    step = RoutingStep(Direction.LEFT, d - 1)
    assert decode_path(encode_path([step])) == [step]


def test_path_codec_boundary_digit_254_is_not_a_wildcard():
    blob = encode_path([RoutingStep(Direction.RIGHT, WILDCARD_BYTE - 1)])
    assert blob == bytes([1, 254])
    (step,) = decode_path(blob)
    assert step.digit == 254 and not step.is_wildcard


def test_codec_rejects_digit_colliding_with_wildcard_byte():
    """Digit 0xFF is reserved for ``*``: both codecs must refuse it
    rather than silently emit a wildcard."""
    with pytest.raises(WirePathError):
        encode_word((0, WILDCARD_BYTE))
    with pytest.raises(WirePathError):
        encode_path([RoutingStep(Direction.LEFT, WILDCARD_BYTE)])
    with pytest.raises(WirePathError):
        encode_message(_message(path=[RoutingStep(Direction.RIGHT,
                                                  WILDCARD_BYTE)]))


@given(FULL_RANGE_STEPS)
@settings(max_examples=100)
def test_message_codec_roundtrip_randomized_paths(steps):
    m = _message(path=steps, payload=b"body")
    control, source, destination, path, body = decode_message(encode_message(m))
    assert path == steps
    assert body == b"body"


# ----------------------------------------------------------------------
# Constant-size witness headers
# ----------------------------------------------------------------------


def test_witness_header_roundtrip():
    from repro.core.distance import UndirectedWitness
    from repro.network.message import decode_witness, encode_witness

    for case, i, j, theta in [("trivial", 0, 0, 0), ("l", 3, 7, 2), ("r", 5, 1, 4)]:
        witness = UndirectedWitness(0, case, i, j, theta)
        blob = encode_witness(witness)
        assert len(blob) == 4
        got = decode_witness(blob)
        assert (got.case, got.i, got.j, got.theta) == (case, i, j, theta)


def test_witness_header_expands_to_the_same_route():
    from repro.core.distance import undirected_witness
    from repro.core.routing import path_from_witness
    from repro.network.message import decode_witness, encode_witness

    x, y = (0, 1, 1, 0, 1, 0), (1, 1, 0, 1, 1, 0)
    witness = undirected_witness(x, y)
    wire = decode_witness(encode_witness(witness))
    direct = path_from_witness(witness, y)
    expanded = path_from_witness(wire, y)
    assert expanded == direct
    from repro.core.routing import verify_path

    assert verify_path(x, y, expanded, 2)


def test_witness_header_rejects_oversized_index():
    from repro.core.distance import UndirectedWitness
    from repro.network.message import encode_witness

    with pytest.raises(WirePathError):
        encode_witness(UndirectedWitness(0, "l", 300, 1, 1))


def test_witness_header_rejects_malformed_blob():
    from repro.network.message import decode_witness

    with pytest.raises(WirePathError):
        decode_witness(b"\x00\x00")
    with pytest.raises(WirePathError):
        decode_witness(bytes([9, 0, 0, 0]))
