"""Cross-cutting property tests: the symmetries of the de Bruijn graph.

These invariants are not stated in the paper but follow from its setup,
and they make unusually strong property tests because they relate the
distance function to itself under graph automorphisms:

* **alphabet relabeling**: any permutation σ of {0..d-1} applied digitwise
  is an automorphism of DG(d, k), so distances are invariant;
* **reversal**: digit-reversal maps L-shifts to R-shifts; it is an
  automorphism of the *undirected* graph and an anti-automorphism of the
  directed one (it reverses arcs);
* **shift relations**: one application of any shift changes any distance
  by at most 1 (the graph metric is 1-Lipschitz along edges).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import directed_distance, undirected_distance
from repro.core.routing import shortest_path_undirected, shortest_path_unidirectional
from repro.core.word import left_shift, right_shift

PAIRS = st.integers(min_value=2, max_value=4).flatmap(
    lambda d: st.integers(min_value=1, max_value=10).flatmap(
        lambda k: st.tuples(
            st.just(d),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            st.permutations(list(range(d))),
        )
    )
)


def _relabel(word, sigma):
    return tuple(sigma[digit] for digit in word)


@given(PAIRS)
@settings(max_examples=300, deadline=None)
def test_distances_invariant_under_alphabet_relabeling(args):
    d, x, y, sigma = args
    assert directed_distance(x, y) == directed_distance(_relabel(x, sigma), _relabel(y, sigma))
    assert undirected_distance(x, y) == undirected_distance(
        _relabel(x, sigma), _relabel(y, sigma)
    )


@given(PAIRS)
@settings(max_examples=300, deadline=None)
def test_reversal_is_undirected_automorphism(args):
    _, x, y, _ = args
    xr, yr = tuple(reversed(x)), tuple(reversed(y))
    assert undirected_distance(x, y) == undirected_distance(xr, yr)


@given(PAIRS)
@settings(max_examples=300, deadline=None)
def test_reversal_reverses_directed_arcs(args):
    # reversal is an anti-automorphism: D(x̄, ȳ) = D(y, x).
    _, x, y, _ = args
    xr, yr = tuple(reversed(x)), tuple(reversed(y))
    assert directed_distance(xr, yr) == directed_distance(y, x)


@given(PAIRS, st.integers(0, 3), st.booleans())
@settings(max_examples=300, deadline=None)
def test_metric_is_lipschitz_along_edges(args, digit_seed, go_left):
    d, x, y, _ = args
    digit = digit_seed % d
    neighbor = left_shift(x, digit) if go_left else right_shift(x, digit)
    base = undirected_distance(x, y)
    assert abs(undirected_distance(neighbor, y) - base) <= 1


@given(PAIRS)
@settings(max_examples=200, deadline=None)
def test_directed_distance_drops_by_one_along_optimal_first_hop(args):
    d, x, y, _ = args
    if x == y:
        return
    path = shortest_path_unidirectional(x, y)
    first = left_shift(x, path[0].digit)
    assert directed_distance(first, y) == directed_distance(x, y) - 1


@given(PAIRS)
@settings(max_examples=200, deadline=None)
def test_undirected_distance_drops_along_every_optimal_hop(args):
    d, x, y, _ = args
    if x == y:
        return
    path = shortest_path_undirected(x, y, use_wildcards=False)
    current = x
    remaining = undirected_distance(x, y)
    for step in path:
        current = (
            left_shift(current, step.digit)
            if step.direction == 0
            else right_shift(current, step.digit)
        )
        remaining -= 1
        assert undirected_distance(current, y) == remaining


@given(PAIRS)
@settings(max_examples=200, deadline=None)
def test_distance_to_left_shift_is_at_most_one(args):
    d, x, _, _ = args
    for digit in range(d):
        assert undirected_distance(x, left_shift(x, digit)) <= 1
        assert undirected_distance(x, right_shift(x, digit)) <= 1
        assert directed_distance(x, left_shift(x, digit)) <= 1
