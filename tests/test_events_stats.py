"""Direct unit tests for the event queue and the statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.events import Event, EventKind, EventQueue
from repro.network.message import ControlCode, Message
from repro.network.stats import SimulationStats, jain_fairness, percentile


# ----------------------------------------------------------------------
# EventQueue
# ----------------------------------------------------------------------


def test_events_pop_in_time_order():
    queue = EventQueue()
    queue.push(5.0, EventKind.ARRIVE, (0, 1))
    queue.push(1.0, EventKind.INJECT, (0, 0))
    queue.push(3.0, EventKind.FAIL, (1, 1))
    times = [queue.pop().time for _ in range(3)]
    assert times == [1.0, 3.0, 5.0]


def test_equal_times_are_fifo():
    queue = EventQueue()
    first = queue.push(2.0, EventKind.INJECT, (0, 0))
    second = queue.push(2.0, EventKind.INJECT, (0, 1))
    assert queue.pop() is first
    assert queue.pop() is second


def test_peek_time_and_len():
    queue = EventQueue()
    assert queue.peek_time() is None
    assert not queue
    queue.push(4.0, EventKind.RECOVER, (0,))
    assert queue.peek_time() == 4.0
    assert len(queue) == 1
    assert bool(queue)


def test_event_carries_message():
    message = Message(ControlCode.DATA, (0,), (1,), [])
    queue = EventQueue()
    event = queue.push(0.0, EventKind.ARRIVE, (1,), message)
    assert event.message is message
    assert event.kind == EventKind.ARRIVE


def test_schedule_fast_path_interleaves_with_push():
    """Raw ``schedule`` entries and ``push`` events share one total order,
    and ``pop`` materialises an equivalent Event either way."""
    message = Message(ControlCode.DATA, (0,), (1,), [])
    queue = EventQueue()
    pushed = queue.push(2.0, EventKind.INJECT, (0,))
    queue.schedule(1.0, EventKind.ARRIVE, (1,), message)
    queue.schedule(2.0, EventKind.ARRIVE, (1,))  # FIFO after `pushed`
    first = queue.pop()
    assert isinstance(first, Event)
    assert (first.time, first.kind, first.node) == (1.0, EventKind.ARRIVE, (1,))
    assert first.message is message
    assert queue.pop() is pushed
    assert queue.pop().time == 2.0
    assert not queue


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100)
def test_queue_is_a_stable_sort(times):
    queue = EventQueue()
    events = [queue.push(t, EventKind.INJECT, (0,)) for t in times]
    popped = [queue.pop() for _ in range(len(times))]
    assert [e.time for e in popped] == sorted(times)
    # Stability: equal times preserve insertion order.
    for earlier, later in zip(popped, popped[1:]):
        if earlier.time == later.time:
            assert events.index(earlier) < events.index(later)


# ----------------------------------------------------------------------
# percentile / fairness
# ----------------------------------------------------------------------


def test_percentile_edges():
    assert percentile([], 95) == 0.0
    assert percentile([7.0], 50) == 7.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0


def test_percentile_interpolates():
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
    assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=1, max_size=40))
@settings(max_examples=150)
def test_percentile_within_data_range(values):
    for q in (0, 25, 50, 75, 95, 100):
        result = percentile(values, q)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9


def test_jain_fairness_extremes():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.0, 0.0]) == 1.0
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    # One busy link among n idle ones scores 1/n.
    assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


@given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                min_size=1, max_size=30))
@settings(max_examples=150)
def test_jain_fairness_bounds(values):
    score = jain_fairness(values)
    assert 0.0 <= score <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# SimulationStats
# ----------------------------------------------------------------------


def _delivered_message(latency: float, hops: int) -> Message:
    message = Message(ControlCode.DATA, (0,) * hops if hops else (0,), (1,), [])
    message.injected_at = 0.0
    message.delivered_at = latency
    message.trace = [(i,) for i in range(hops + 1)]
    return message


def test_stats_summary_keys_and_values():
    stats = SimulationStats()
    stats.delivered = [_delivered_message(2.0, 2), _delivered_message(4.0, 4)]
    stats.link_loads = {((0,), (1,)): 3, ((1,), (0,)): 1}
    stats.horizon = 10.0
    summary = stats.summary()
    assert summary["delivered"] == 2.0
    assert summary["mean_latency"] == pytest.approx(3.0)
    assert summary["mean_hops"] == pytest.approx(3.0)
    assert summary["max_link_load"] == 3.0
    assert summary["throughput"] == pytest.approx(0.2)


def test_stats_empty_defaults():
    stats = SimulationStats()
    assert stats.mean_latency() == 0.0
    assert stats.mean_hops() == 0.0
    assert stats.p95_latency() == 0.0
    assert stats.max_latency() == 0.0
    assert stats.throughput() == 0.0
    assert stats.max_link_load() == 0
    assert stats.mean_link_load() == 0.0
    assert stats.load_fairness() == 1.0
    assert stats.mean_queue_delay() == 0.0


def test_window_filters_by_injection_time():
    stats = SimulationStats()
    early = _delivered_message(2.0, 2)
    early.injected_at = 1.0
    late = _delivered_message(9.0, 2)
    late.injected_at = 8.0
    stats.delivered = [early, late]
    stats.horizon = 10.0
    window = stats.window(5.0)
    assert window.delivered == [late]
    assert window.horizon == pytest.approx(5.0)
    bounded = stats.window(0.0, 5.0)
    assert bounded.delivered == [early]


def test_window_of_empty_stats():
    window = SimulationStats().window(0.0, 10.0)
    assert window.delivered_count == 0
    assert window.mean_latency() == 0.0
