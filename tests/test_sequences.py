"""Tests for de Bruijn sequences and Hamiltonian cycles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.debruijn import directed_graph
from repro.graphs.sequences import (
    debruijn_sequence_euler,
    debruijn_sequence_lyndon,
    hamiltonian_cycle,
    hamiltonian_path,
    is_debruijn_sequence,
    is_hamiltonian_cycle,
    lyndon_words,
    windows,
)

GRID = [(2, 1), (2, 2), (2, 3), (2, 4), (2, 5), (3, 2), (3, 3), (4, 2), (5, 2)]


# ----------------------------------------------------------------------
# Lyndon words
# ----------------------------------------------------------------------


def test_lyndon_words_binary_up_to_3():
    words = list(lyndon_words(2, 3))
    assert words == [(0,), (0, 0, 1), (0, 1), (0, 1, 1), (1,)]


def test_lyndon_words_are_lexicographically_sorted():
    words = list(lyndon_words(3, 4))
    assert words == sorted(words)
    assert len(words) == len(set(words))


@given(st.integers(2, 4), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_lyndon_words_are_strictly_smallest_rotations(d, n):
    for word in lyndon_words(d, n):
        rotations = [word[i:] + word[:i] for i in range(1, len(word))]
        assert all(word < rot for rot in rotations)


def test_lyndon_word_count_binary_length_6():
    # Necklace counting: binary Lyndon words of length exactly 6 number 9.
    assert sum(1 for w in lyndon_words(2, 6) if len(w) == 6) == 9


# ----------------------------------------------------------------------
# de Bruijn sequences, two constructions
# ----------------------------------------------------------------------


def test_fkm_binary_order3_known_value():
    assert debruijn_sequence_lyndon(2, 3) == (0, 0, 0, 1, 0, 1, 1, 1)


def test_euler_binary_order3_is_valid():
    assert is_debruijn_sequence(debruijn_sequence_euler(2, 3), 2, 3)


@pytest.mark.parametrize("d,k", GRID)
def test_fkm_sequences_are_valid(d, k):
    seq = debruijn_sequence_lyndon(d, k)
    assert len(seq) == d**k
    assert is_debruijn_sequence(seq, d, k)


@pytest.mark.parametrize("d,k", GRID)
def test_euler_sequences_are_valid(d, k):
    seq = debruijn_sequence_euler(d, k)
    assert len(seq) == d**k
    assert is_debruijn_sequence(seq, d, k)


def test_the_two_constructions_may_differ_but_both_count():
    # Both are de Bruijn sequences; equality is not required (there are
    # many B(d, k)), but each must contain every window exactly once.
    fkm = debruijn_sequence_lyndon(2, 4)
    euler = debruijn_sequence_euler(2, 4)
    assert is_debruijn_sequence(fkm, 2, 4)
    assert is_debruijn_sequence(euler, 2, 4)
    assert set(windows(fkm, 4)) == set(windows(euler, 4))


def test_is_debruijn_sequence_rejects_wrong_length():
    assert not is_debruijn_sequence((0, 1), 2, 3)


def test_is_debruijn_sequence_rejects_duplicates():
    assert not is_debruijn_sequence((0, 0, 0, 0, 0, 1, 1, 1), 2, 3)


def test_is_debruijn_sequence_rejects_bad_digits():
    assert not is_debruijn_sequence((0, 0, 0, 2, 0, 1, 1, 1), 2, 3)


# ----------------------------------------------------------------------
# Hamiltonian cycles (the paper's "multiple Hamiltonian paths" feature)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", GRID)
def test_hamiltonian_cycle_is_valid(d, k):
    cycle = hamiltonian_cycle(d, k)
    assert is_hamiltonian_cycle(cycle, d, k)


def test_hamiltonian_cycle_uses_graph_arcs():
    g = directed_graph(2, 3)
    cycle = hamiltonian_cycle(2, 3)
    for u, v in zip(cycle, cycle[1:] + cycle[:1]):
        # Every consecutive pair is a left-shift arc (possibly a loop at
        # the constant words, which the simple edge set drops but the arc
        # multiset contains).
        assert v in g.out_neighbors(u)


def test_hamiltonian_path_covers_all_vertices():
    path = hamiltonian_path(3, 2)
    assert len(path) == 9 and len(set(path)) == 9


def test_is_hamiltonian_cycle_rejects_shuffled_order():
    cycle = hamiltonian_cycle(2, 3)
    broken = [cycle[0]] + cycle[2:] + [cycle[1]]
    assert not is_hamiltonian_cycle(broken, 2, 3)


def test_windows_wrap_cyclically():
    seq = (0, 0, 1, 1)
    assert list(windows(seq, 2)) == [(0, 0), (0, 1), (1, 1), (1, 0)]


def test_lyndon_counts_match_moebius_formula():
    # Number of Lyndon words of length exactly n over d symbols is
    # (1/n) * sum over divisors e of n of mu(e) * d^(n/e).
    def moebius(n):
        result = 1
        p = 2
        while p * p <= n:
            if n % p == 0:
                n //= p
                if n % p == 0:
                    return 0
                result = -result
            else:
                p += 1
        if n > 1:
            result = -result
        return result

    for d in (2, 3):
        for n in range(1, 8):
            expected = sum(
                moebius(e) * d ** (n // e) for e in range(1, n + 1) if n % e == 0
            ) // n
            actual = sum(1 for w in lyndon_words(d, n) if len(w) == n)
            assert actual == expected, (d, n)


def test_fkm_lengths_sum_to_dk():
    # The FKM theorem implies the lengths of Lyndon words with length
    # dividing k sum to exactly d^k.
    for d, k in [(2, 5), (3, 3), (2, 6)]:
        total = sum(len(w) for w in lyndon_words(d, k) if k % len(w) == 0)
        assert total == d**k
