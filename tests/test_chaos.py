"""Tests for the chaos engine: schedules, link loss, campaigns (E19)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.network.chaos import (
    ChaosConfig,
    ChaosSchedule,
    campaign_curves,
    generate_schedule,
    install_link_loss,
    run_campaign,
)
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------


def test_schedule_is_deterministic_in_the_seed():
    args = dict(d=2, k=4, horizon=500.0, mtbf=100.0, mttr=20.0)
    first = generate_schedule(seed="alpha", **args)
    again = generate_schedule(seed="alpha", **args)
    other = generate_schedule(seed="beta", **args)
    assert first.events == again.events
    assert first.events != other.events


def test_schedule_alternates_fail_recover_per_site():
    schedule = generate_schedule(2, 4, 800.0, "alternate",
                                 mtbf=100.0, mttr=30.0)
    assert schedule.events, "expected some churn at this MTBF"
    per_site = {}
    for event in schedule.events:
        per_site.setdefault(event.site, []).append(event.kind)
    for kinds in per_site.values():
        # Strict alternation starting with a failure.
        for i, kind in enumerate(kinds):
            assert kind == ("fail" if i % 2 == 0 else "recover")
    times = [e.time for e in schedule.events]
    assert times == sorted(times)
    assert all(0 < t < 800.0 for t in times)


def test_protected_sites_never_fail():
    protected = [(0, 0, 0, 0), (1, 1, 1, 1)]
    schedule = generate_schedule(2, 4, 2000.0, "protect",
                                 mtbf=50.0, mttr=10.0, protect=protected)
    assert schedule.events
    failed_sites = {e.site for e in schedule.events}
    assert not failed_sites.intersection(protected)


def test_regional_outage_fells_the_whole_prefix_together():
    schedule = generate_schedule(
        2, 4, 4000.0, "region", mtbf=float("inf"), mttr=50.0,
        regional_rate=0.002, region_prefix_len=2)
    fails = [e for e in schedule.events if e.kind == "fail"]
    assert fails, "expected at least one regional event at this rate"
    assert all(e.region is not None for e in schedule.events)
    by_time = {}
    for e in fails:
        by_time.setdefault(e.time, []).append(e)
    for time, group in by_time.items():
        prefixes = {e.site[:2] for e in group}
        assert len(prefixes) == 1  # every felled site shares the prefix
        assert prefixes == {group[0].region}
        assert len(group) == 2 ** 2  # d**(k - prefix_len) sites per region


def test_schedule_apply_drives_the_simulator():
    schedule = ChaosSchedule(2, 3, 100.0, "manual")
    from repro.network.chaos import FaultEvent

    schedule.events.append(FaultEvent(5.0, "fail", (0, 0, 1)))
    schedule.events.append(FaultEvent(20.0, "recover", (0, 0, 1)))
    sim = Simulator(2, 3)
    schedule.apply(sim)
    sim.run(until=10.0)
    assert sim.is_failed((0, 0, 1))
    sim.run(until=30.0)
    assert not sim.is_failed((0, 0, 1))
    assert schedule.fail_count == 1
    assert schedule.fail_times() == [5.0]


# ----------------------------------------------------------------------
# Bernoulli link loss
# ----------------------------------------------------------------------


def _loss_run(seed, rate=0.3):
    sim = Simulator(2, 4)
    install_link_loss(sim, rate, seed)
    router = BidirectionalOptimalRouter()
    from repro.network.traffic import random_pairs
    import random as _random

    for at, source, dest in random_pairs(2, 4, 60, spacing=2.0,
                                         rng=_random.Random("loss-traffic")):
        sim.send(source, dest, router, at=at)
    return sim.run()


def test_link_loss_is_seeded_and_counted():
    first = _loss_run("loss-a")
    again = _loss_run("loss-a")
    other = _loss_run("loss-b")
    assert first.link_lost > 0
    assert first.delivered_count < 60
    assert (first.link_lost, first.delivered_count) == \
        (again.link_lost, again.delivered_count)
    assert (first.link_lost, first.delivered_count) != \
        (other.link_lost, other.delivered_count)
    assert first.summary()["link_lost"] == float(first.link_lost)


def test_zero_loss_rate_uninstalls_the_hook():
    sim = Simulator(2, 3)
    install_link_loss(sim, 0.5, "x")
    assert sim.loss_fn is not None
    assert install_link_loss(sim, 0.0, "x") is None
    assert sim.loss_fn is None
    with pytest.raises(InvalidParameterError):
        install_link_loss(sim, 1.5, "x")


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------


SMALL = ChaosConfig(d=2, k=4, seed="unit", horizon=800.0, messages=80,
                    spacing=5.0, mtbf=200.0, mttr=60.0, loss_rate=0.04)


def test_zero_intensity_campaign_delivers_everything():
    records = run_campaign(SMALL, intensities=(0.0,))
    assert len(records) == 4
    for record in records:
        assert record["delivery_ratio"] == 1.0
        assert record["fault_events"] == 0
        assert record["link_lost"] == 0
        assert record["mean_stretch"] == 1.0


def test_campaign_replays_exactly_from_its_seed():
    first = run_campaign(SMALL, intensities=(0.0, 0.6))
    again = run_campaign(SMALL, intensities=(0.0, 0.6))
    assert first == again


def test_detour_and_repair_beat_oblivious_under_faults():
    records = run_campaign(SMALL, intensities=(0.5, 1.0))
    by_key = {(r["strategy"], r["intensity"]): r for r in records}
    for intensity in (0.5, 1.0):
        floor = by_key[("oblivious", intensity)]["delivery_ratio"]
        assert floor < 1.0  # the chaos actually bites
        for strategy in ("detour", "repair"):
            record = by_key[(strategy, intensity)]
            assert record["delivery_ratio"] > floor, (
                f"{strategy} did not beat oblivious at intensity {intensity}")
    # The mechanisms actually fired.
    assert by_key[("detour", 1.0)]["detoured"] > 0
    assert by_key[("repair", 1.0)]["table_repairs"] > 0


def test_campaign_curves_are_sorted_per_strategy():
    records = run_campaign(SMALL, intensities=(1.0, 0.0),
                           strategies=("oblivious", "repair"))
    curves = campaign_curves(records)
    assert set(curves) == {"oblivious", "repair"}
    for points in curves.values():
        assert [p[0] for p in points] == [0.0, 1.0]


def test_campaign_rejects_bad_inputs():
    with pytest.raises(InvalidParameterError):
        run_campaign(SMALL, intensities=(-0.5,))
    with pytest.raises(InvalidParameterError):
        run_campaign(SMALL, intensities=(0.5,), strategies=("teleport",))
    with pytest.raises(InvalidParameterError):
        ChaosConfig(d=2, k=4, mtbf=0.0)
    with pytest.raises(InvalidParameterError):
        ChaosConfig(d=2, k=4, loss_rate=1.5)
    with pytest.raises(InvalidParameterError):
        ChaosConfig(d=2, k=4, region_prefix_len=9)


def test_regional_campaign_records_fault_events():
    config = ChaosConfig(d=2, k=4, seed="regional", horizon=800.0,
                         messages=60, spacing=5.0, mtbf=10_000.0,
                         mttr=80.0, regional_rate=0.01, region_prefix_len=1)
    records = run_campaign(config, intensities=(1.0,),
                           strategies=("oblivious", "repair"))
    assert all(r["fault_events"] > 0 for r in records)
    oblivious, repair = records
    assert repair["delivery_ratio"] >= oblivious["delivery_ratio"]


# ----------------------------------------------------------------------
# Detection-driven strategies (E20)
# ----------------------------------------------------------------------


def test_chaos_config_validates_swim_knobs():
    with pytest.raises(InvalidParameterError):
        ChaosConfig(d=2, k=4, probe_interval=0.0)
    with pytest.raises(InvalidParameterError):
        ChaosConfig(d=2, k=4, suspicion_timeout=-1.0)


def test_chaos_config_swim_config_carries_the_seed():
    config = ChaosConfig(d=2, k=4, seed="xyz", probe_interval=7.0)
    swim = config.swim_config(":0.5")
    assert swim.probe_interval == 7.0
    assert swim.seed == "xyz:swim:0.5"


def test_detection_strategies_run_and_replay():
    config = ChaosConfig(d=2, k=4, seed="detect-test", horizon=400.0,
                         messages=40, spacing=5.0, mtbf=200.0, mttr=60.0)
    strategies = ("repair", "detour-detect", "repair-detect")
    records = run_campaign(config, intensities=(0.0, 1.0),
                           strategies=strategies)
    by_key = {(r["strategy"], r["intensity"]): r for r in records}
    # Fault-free control: full delivery, no false convictions.
    assert by_key[("repair-detect", 0.0)]["delivery_ratio"] == 1.0
    assert by_key[("repair-detect", 0.0)]["false_positives"] == 0
    # The detector runs on detection legs only.
    assert by_key[("detour-detect", 1.0)]["membership_messages"] > 0
    assert by_key[("repair-detect", 1.0)]["membership_bytes"] > 0
    assert by_key[("repair", 1.0)]["membership_messages"] == 0
    # Under faults, detection-driven repair actually detected outages.
    assert by_key[("repair-detect", 1.0)]["detected_outages"] > 0
    # The whole campaign replays bit-for-bit from its seed.
    assert run_campaign(config, intensities=(0.0, 1.0),
                        strategies=strategies) == records


def test_unknown_strategy_is_rejected():
    config = ChaosConfig(d=2, k=3, horizon=100.0, messages=5)
    with pytest.raises(InvalidParameterError):
        run_campaign(config, intensities=(0.0,), strategies=("teleport",))
