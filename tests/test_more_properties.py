"""Late-pass property tests aimed at the thinner-covered modules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# ----------------------------------------------------------------------
# Queueing model
# ----------------------------------------------------------------------


@given(st.floats(0.1, 5.0), st.floats(0.1, 5.0), st.floats(0.001, 0.02))
@settings(max_examples=100)
def test_prediction_monotone_in_distance_and_rate(distance_a, distance_b, rate):
    from repro.analysis.queueing import predict_uniform_latency

    lo, hi = sorted((distance_a, distance_b))
    p_lo = predict_uniform_latency(64, 252, rate, lo)
    p_hi = predict_uniform_latency(64, 252, rate, hi)
    assert p_hi.latency >= p_lo.latency - 1e-12


@given(st.floats(0.0, 0.95))
@settings(max_examples=100)
def test_md1_wait_monotone(utilisation):
    from repro.analysis.queueing import md1_wait

    assert md1_wait(utilisation) <= md1_wait(min(utilisation + 0.01, 0.99)) + 1e-12


# ----------------------------------------------------------------------
# Moore bound
# ----------------------------------------------------------------------


@given(st.integers(2, 6), st.integers(1, 12))
@settings(max_examples=100)
def test_moore_rows_consistent(d, k):
    from repro.analysis.moore import comparison_rows, directed_moore_bound

    debruijn, kautz = comparison_rows(d, k)
    assert debruijn.moore_bound == kautz.moore_bound == directed_moore_bound(d, k)
    assert debruijn.order < kautz.order <= kautz.moore_bound
    assert debruijn.order * (d + 1) == kautz.order * d  # K = DB·(d+1)/d


# ----------------------------------------------------------------------
# Witness wire header
# ----------------------------------------------------------------------


@given(
    st.sampled_from(["trivial", "l", "r"]),
    st.integers(0, 255),
    st.integers(0, 255),
    st.integers(0, 255),
)
@settings(max_examples=200)
def test_witness_header_roundtrip_fuzz(case, i, j, theta):
    from repro.core.distance import UndirectedWitness
    from repro.network.message import decode_witness, encode_witness

    witness = UndirectedWitness(0, case, i, j, theta)
    decoded = decode_witness(encode_witness(witness))
    assert (decoded.case, decoded.i, decoded.j, decoded.theta) == (case, i, j, theta)


# ----------------------------------------------------------------------
# Shortest-path counting consistency
# ----------------------------------------------------------------------


@given(
    st.integers(2, 3).flatmap(
        lambda d: st.integers(2, 6).flatmap(
            lambda k: st.tuples(
                st.just(d),
                st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
                st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            )
        )
    )
)
@settings(max_examples=100, deadline=None)
def test_random_shortest_path_lies_in_enumeration(args):
    import random

    from repro.core.paths import all_shortest_paths, count_shortest_paths, random_shortest_path

    d, x, y = args
    count = count_shortest_paths(x, y, d)
    assert count >= 1
    if count <= 200:
        enumerated = {tuple(p) for p in all_shortest_paths(x, y, d)}
        assert len(enumerated) == count
        sampled = tuple(random_shortest_path(x, y, d, random.Random(1)))
        assert sampled in enumerated


# ----------------------------------------------------------------------
# Sequences under larger alphabets
# ----------------------------------------------------------------------


@given(st.integers(2, 6), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_sequences_valid_for_wider_alphabets(d, k):
    from repro.graphs.sequences import (
        debruijn_sequence_euler,
        debruijn_sequence_lyndon,
        is_debruijn_sequence,
    )

    assert is_debruijn_sequence(debruijn_sequence_lyndon(d, k), d, k)
    assert is_debruijn_sequence(debruijn_sequence_euler(d, k), d, k)


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(-999, 999), st.floats(-1e3, 1e3, allow_nan=False)),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=100)
def test_format_table_alignment_invariants(rows):
    from repro.analysis.tables import format_table

    text = format_table(["a", "b"], rows)
    lines = text.splitlines()
    assert len(lines) == len(rows) + 2
    # No trailing whitespace, and the rule line matches the header width.
    assert all(line == line.rstrip() for line in lines)
    assert set(lines[1]) <= {"-", " "}
