"""Real-process cluster runtime tests (E25).

Layered from pure unit tests (spec math, detour walks on an injected
dead-site set) through in-process wall-clock SWIM over real UDP sockets,
up to a compact end-to-end kill drill on a genuine multi-process
cluster.  The slow process-level tests use small graphs and fast SWIM
timers so the whole file stays in CI budget.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.cluster.harness import ClusterHarness, ClusterSpec, run_kill_drill
from repro.cluster.node import ClusterNodeSpec, ClusterQueryEngine, table_digest
from repro.core.packed import PackedSpace
from repro.core.parallel import ACTION_UNREACHABLE
from repro.core.routing import path_words
from repro.exceptions import RoutingError, SimulationError
from repro.network.membership import SwimConfig
from repro.network.resilience import compile_with_failures
from repro.service.client import (RobustRouteClient, fetch_stats, query_once,
                                  run_robust_burst)
from repro.service.engine import RouteQueryEngine
from repro.service.server import RouteQueryServer, ServerConfig

HOST = "127.0.0.1"


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# ClusterSpec unit tests
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k,nodes", [(2, 5, 4), (2, 5, 3), (3, 3, 5),
                                       (2, 4, 16), (2, 3, 7)])
def test_site_ranges_partition_the_site_space(d, k, nodes):
    spec = ClusterSpec(d=d, k=k, nodes=nodes)
    ranges = spec.site_ranges()
    assert len(ranges) == nodes
    assert ranges[0][0] == 0
    assert ranges[-1][1] == spec.order
    sizes = []
    for (start, stop), (nxt_start, _) in zip(ranges, ranges[1:]):
        assert stop == nxt_start  # contiguous, no gaps or overlaps
        sizes.append(stop - start)
    sizes.append(ranges[-1][1] - ranges[-1][0])
    assert min(sizes) >= 1
    assert max(sizes) - min(sizes) <= 1  # remainder spread one site wide


def test_spec_validation_and_bound():
    with pytest.raises(SimulationError):
        ClusterSpec(d=2, k=3, nodes=1)
    with pytest.raises(SimulationError):
        ClusterSpec(d=2, k=3, nodes=9)  # more nodes than sites
    fast = ClusterSpec(d=2, k=5, nodes=3, probe_interval=0.1,
                       probe_timeout=0.05, suspicion_timeout=0.2)
    slow = ClusterSpec(d=2, k=5, nodes=3)
    assert 0 < fast.detection_bound() < slow.detection_bound()
    # More nodes -> longer round-robin sweep -> larger bound.
    assert ClusterSpec(nodes=8).detection_bound() > slow.detection_bound()


def test_failed_sites_maps_dead_nodes_to_their_ranges():
    spec = ClusterSpec(d=2, k=5, nodes=4)
    node_spec = ClusterNodeSpec(
        node_id=0, n_nodes=4, d=2, k=5, directed=False, table_path="unused",
        site_ranges=spec.site_ranges(),
        swim_peers=tuple((HOST, 0) for _ in range(4)))
    ranges = spec.site_ranges()
    assert node_spec.failed_sites(frozenset()) == []
    assert node_spec.failed_sites(frozenset({2})) == list(range(*ranges[2]))
    both = node_spec.failed_sites(frozenset({3, 1}))
    assert both == list(range(*ranges[1])) + list(range(*ranges[3]))


# ----------------------------------------------------------------------
# Detour-mode engine (no processes: inject the verdict directly)
# ----------------------------------------------------------------------


def test_cluster_engine_detours_around_dead_sites():
    d, k = 2, 5
    spec = ClusterSpec(d=d, k=k, nodes=4)
    dead_node = 3
    dead = frozenset(range(*spec.site_ranges()[dead_node]))
    table = compile_with_failures(d, k, failed=())
    truth = compile_with_failures(d, k, failed=sorted(dead))
    engine = ClusterQueryEngine(d, k, table)
    engine.dead_packed = dead
    space = PackedSpace(d, k)
    live = [site for site in range(spec.order) if site not in dead]

    checked = routed = 0
    for px in live:
        for py in live:
            try:
                if truth.distance_packed(px, py) >= ACTION_UNREACHABLE:
                    continue  # genuinely cut off by the failures
            except RoutingError:
                continue
            checked += 1
            try:
                distance, steps = engine.resolve(
                    space.unpack(px), space.unpack(py), False, True)
            except RoutingError:
                # Best-effort: a stale-table deflection can dead-end; the
                # service layer turns this into a retryable error and the
                # retry lands after repair.  It must stay rare.
                continue
            assert distance == len(steps)
            words = path_words(space.unpack(px), steps, d)
            assert words[-1] == space.unpack(py)
            for word in words[1:-1]:
                assert space.pack(word) not in dead
            routed += 1
    assert checked > 0
    assert routed / checked >= 0.90  # measured 0.96 on this topology
    counters = engine.registry.snapshot()["counters"]
    assert counters.get("cluster.detoured_queries", 0) > 0

    # Endpoints on the dead node are refused outright, not walked.
    dead_word = space.unpack(next(iter(dead)))
    with pytest.raises(RoutingError):
        engine.resolve(space.unpack(live[0]), dead_word, False, True)
    with pytest.raises(RoutingError):
        engine.resolve(dead_word, space.unpack(live[0]), False, True)

    # An empty verdict is exactly the parent engine again.
    engine.dead_packed = frozenset()
    base = RouteQueryEngine(d, k, table=table)
    for px, py in [(live[0], live[-1]), (live[3], live[7])]:
        assert (engine.resolve(space.unpack(px), space.unpack(py), False,
                               True)
                == base.resolve(space.unpack(px), space.unpack(py), False,
                                True))
    truth.close()
    table.close()


# ----------------------------------------------------------------------
# Wall-clock SWIM over real UDP sockets (in-process agents)
# ----------------------------------------------------------------------


def test_swim_agents_convict_a_dead_peer_over_real_udp():
    from repro.cluster.swim import SwimAgent

    n = 3
    config = SwimConfig(probe_interval=0.1, probe_timeout=0.05,
                        indirect_probes=1, suspicion_timeout=0.25,
                        seed="udp-test")
    bound = 2 * (n - 1) * 0.1 + 2 * 0.05 + 0.25 + 1.0

    async def scenario():
        socks = []
        addrs = []
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind((HOST, 0))
            socks.append(sock)
            addrs.append(sock.getsockname())
        agents = []
        try:
            for i in range(n):
                agent = SwimAgent(
                    i, n, config,
                    peers={j: addrs[j] for j in range(n) if j != i},
                    bind=addrs[i])
                await agent.start(sock=socks[i])
                agents.append(agent)
            await asyncio.sleep(3 * config.probe_interval)  # stabilize
            for agent in agents:
                assert agent.dead_nodes() == frozenset()

            await agents[n - 1].close()  # the node just vanishes
            killed_at = time.monotonic()
            survivors = agents[: n - 1]
            while any(a.dead_nodes() != frozenset({n - 1})
                      for a in survivors):
                if time.monotonic() - killed_at > bound:
                    raise AssertionError(
                        f"no conviction within the {bound:.2f}s bound: "
                        f"{[sorted(a.dead_nodes()) for a in survivors]}")
                await asyncio.sleep(0.02)
            for agent in survivors:
                counters = agent.registry.snapshot()["counters"]
                assert counters.get("swim.convictions", 0) >= 1
        finally:
            for agent in agents:
                await agent.close()
        return True

    assert run(scenario())


# ----------------------------------------------------------------------
# Client-side failover and respawn-window retries
# ----------------------------------------------------------------------


def _sample_pairs(d, k, count, seed=0):
    import random as _random

    space = PackedSpace(d, k)
    rng = _random.Random(seed)
    order = d ** k
    return [(space.unpack(rng.randrange(order)),
             space.unpack(rng.randrange(order))) for _ in range(count)]


def _reserved_dead_port() -> int:
    """A port that was just bound and released: connecting gets refused."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((HOST, 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def test_robust_client_fails_over_to_fallback_endpoint():
    async def scenario():
        dead_port = _reserved_dead_port()
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            pairs = _sample_pairs(2, 6, 80, seed=25)
            async with RobustRouteClient(
                HOST, dead_port, d=2,
                fallbacks=[(HOST, server.port)],
            ) as client:
                outcome = await client.query_many(pairs)
                assert outcome.ok_count == len(pairs)
                counters = client.registry.snapshot()["counters"]
                assert counters.get("client.failovers", 0) >= 1
        return True

    assert run(scenario())


def test_query_once_rides_out_a_respawn_window():
    engine = RouteQueryEngine(2, 5)
    port = _reserved_dead_port()

    def _serve_late():
        async def _run():
            await asyncio.sleep(0.3)  # the "respawn window"
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((HOST, port))
            sock.listen(16)
            server = RouteQueryServer(engine, ServerConfig())
            await server.start(listen_socket=sock)
            try:
                await asyncio.sleep(5.0)
            except asyncio.CancelledError:  # pragma: no cover
                pass
            finally:
                await server.stop()

        asyncio.run(_run())

    thread = threading.Thread(target=_serve_late, daemon=True)
    thread.start()
    try:
        space = PackedSpace(2, 5)
        reply = query_once(HOST, port, space.unpack(3), space.unpack(17),
                           d=2, retries=10, backoff=0.08)
        assert reply.ok and reply.distance is not None
    finally:
        thread.join(timeout=10.0)

    # Without retries the refused connection surfaces immediately.
    with pytest.raises((ConnectionError, OSError)):
        query_once(HOST, _reserved_dead_port(), space.unpack(3),
                   space.unpack(17), d=2, retries=0)


# ----------------------------------------------------------------------
# Process-level harness end to end
# ----------------------------------------------------------------------


FAST = dict(probe_interval=0.15, probe_timeout=0.08, suspicion_timeout=0.4,
            indirect_probes=1)


def test_kill_drill_end_to_end(tmp_path):
    """The full E25 pipeline on a real 3-process cluster, compact sizing:
    SIGKILL under load, SWIM verdict within the bound, byte-identical
    repair on every survivor, zero lost queries."""
    spec = ClusterSpec(d=2, k=5, nodes=3, repair_delay=0.25, **FAST)
    report = run_kill_drill(spec, str(tmp_path), queries=600,
                            burst_window=32)
    assert report["victim"] == 2
    assert report["baseline"]["ok"] == report["baseline"]["queries"]
    burst = report["fault_burst"]
    assert burst["lost"] == 0 and burst["queries"] >= 600
    bound = report["detection_bound_s"]
    assert all(0 < latency <= bound
               for latency in report["detection_s"].values())
    digest = report["table_digest"]
    assert set(digest["survivors"]) == {0, 1}
    assert all(value == digest["expected"]
               for value in digest["survivors"].values())
    assert report["healed"]["ok"] == report["healed"]["queries"]


def test_harness_status_kill_and_expected_digest(tmp_path):
    spec = ClusterSpec(d=2, k=5, nodes=3, **FAST)
    with ClusterHarness(spec, str(tmp_path)) as harness:
        harness.up()
        rows = harness.status()
        assert [row["node"] for row in rows] == [0, 1, 2]
        assert all(row["alive"] for row in rows)
        pristine = harness.expected_digest([])
        assert all(row.get("cluster.table_digest") == pristine
                   for row in rows)

        harness.kill(0)
        verdict = harness.wait_for_verdict([0])
        assert set(verdict) == {1, 2}
        harness.wait_repaired([0])
        want = harness.expected_digest([0])
        assert want != pristine
        for node in (1, 2):
            assert harness.counters(node)["cluster.table_digest"] == want
        rows = harness.status()
        assert rows[0]["alive"] is False
        # The dead node's port is genuinely closed, not a backlog hang.
        with pytest.raises((ConnectionError, OSError)):
            fetch_stats(HOST, harness.tcp_ports[0], retries=0)
        # Survivors still answer whole-graph queries after repair.
        pairs = harness.sample_pairs(64, dead=[0])
        outcome, _ = run_robust_burst(HOST, harness.tcp_ports[1], pairs,
                                      d=2, window=16)
        assert outcome.ok_count == len(pairs)


def test_harness_isolation_verdict_and_rejoin(tmp_path):
    """Wire fault: black-hole one node's membership traffic through the
    chaos proxies — survivors convict it, queries keep flowing; heal the
    partition and the fleet converges back to an empty verdict with the
    pristine table."""
    spec = ClusterSpec(d=2, k=5, nodes=3, use_proxies=True, **FAST)
    with ClusterHarness(spec, str(tmp_path)) as harness:
        harness.up()
        victim = 2
        harness.isolate(victim)
        verdict = harness.wait_for_verdict([victim])
        assert set(verdict) == {0, 1}
        harness.wait_repaired([victim])
        # The isolated node is alive the whole time — still answering on
        # its TCP port even while the survivors have convicted it.
        assert harness.counters(victim)["cluster.node_id"] == victim

        harness.heal(victim)
        deadline = time.monotonic() + harness.spec.detection_bound() + 10.0
        pristine = harness.expected_digest([])
        while True:
            rows = [harness.counters(node) for node in range(spec.nodes)]
            if all(row.get("cluster.dead_mask", -1) == 0
                   and row.get("cluster.table_digest") == pristine
                   and row.get("cluster.unrepaired", -1) == 0
                   for row in rows):
                break
            if time.monotonic() > deadline:
                raise AssertionError(
                    "fleet did not reconverge after heal: "
                    + repr([{k: v for k, v in row.items()
                             if k.startswith("cluster.")} for row in rows]))
            time.sleep(0.05)
        # Full recovery: everyone routes on the pristine table again.
        pairs = harness.sample_pairs(64)
        outcome, _ = run_robust_burst(HOST, harness.tcp_ports[victim],
                                      pairs, d=2, window=16)
        assert outcome.ok_count == len(pairs)


def test_double_fault_convicts_both_nodes(tmp_path):
    """SIGKILL two of four nodes back to back: the verdict accumulates,
    repair converges to the two-node-failure compile."""
    spec = ClusterSpec(d=2, k=5, nodes=4, **FAST)
    with ClusterHarness(spec, str(tmp_path)) as harness:
        harness.up()
        harness.kill(3)
        harness.kill(1)
        harness.wait_for_verdict([1, 3],
                                 timeout=2 * spec.detection_bound())
        harness.wait_repaired([1, 3])
        want = harness.expected_digest([1, 3])
        for node in (0, 2):
            counters = harness.counters(node)
            assert counters["cluster.table_digest"] == want
            assert counters["cluster.dead_mask"] == (1 << 1) | (1 << 3)
        pairs = harness.sample_pairs(48, dead=[1, 3])
        outcome, _ = run_robust_burst(HOST, harness.tcp_ports[0], pairs,
                                      d=2, window=16)
        assert outcome.ok_count == len(pairs)
