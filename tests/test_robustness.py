"""Tests for the random-failure robustness analysis."""

from __future__ import annotations

import random

import pytest

from repro.analysis.robustness import (
    RobustnessPoint,
    path_stretch_samples,
    random_failure_sweep,
    reachable_pair_fraction,
    survivor_component_fraction,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.debruijn import undirected_graph


def test_no_failures_is_fully_connected():
    graph = undirected_graph(2, 4)
    assert survivor_component_fraction(graph, set()) == 1.0
    assert reachable_pair_fraction(graph, set()) == 1.0


def test_isolating_cut_shrinks_component():
    graph = undirected_graph(2, 3)
    # Killing 001 and 100 isolates 000 from the rest.
    failed = {(0, 0, 1), (1, 0, 0)}
    fraction = survivor_component_fraction(graph, failed)
    assert fraction == pytest.approx(5 / 6)  # 6 survivors, component of 5
    reachable = reachable_pair_fraction(graph, failed)
    assert reachable == pytest.approx((5 * 4) / (6 * 5))


def test_sampled_reachability_close_to_exact():
    graph = undirected_graph(2, 4)
    failed = {(0, 0, 0, 1), (1, 0, 0, 0), (0, 1, 1, 0)}
    exact = reachable_pair_fraction(graph, failed)
    sampled = reachable_pair_fraction(graph, failed, sample_pairs=600,
                                      rng=random.Random(5))
    assert abs(exact - sampled) < 0.1


def test_stretch_is_at_least_one():
    graph = undirected_graph(2, 4)
    failed = {(0, 1, 0, 1), (1, 0, 1, 0)}
    stretches = path_stretch_samples(graph, failed, 40, random.Random(3))
    assert stretches
    assert all(s >= 1.0 - 1e-9 for s in stretches)


def test_no_failures_stretch_is_exactly_one():
    graph = undirected_graph(2, 4)
    stretches = path_stretch_samples(graph, set(), 30, random.Random(1))
    assert all(s == pytest.approx(1.0) for s in stretches)


def test_sweep_shape_and_monotonicity():
    rows = random_failure_sweep(2, 5, fractions=(0.0, 0.1, 0.3), stretch_samples=30)
    assert [r.failure_fraction for r in rows] == [0.0, 0.1, 0.3]
    assert all(isinstance(r, RobustnessPoint) for r in rows)
    assert rows[0].component_fraction == 1.0
    assert rows[0].mean_stretch == pytest.approx(1.0)
    # Reachability can only degrade as more sites die (same seed family).
    assert rows[-1].reachable_fraction <= rows[0].reachable_fraction + 1e-9


def test_sweep_rejects_bad_fraction():
    with pytest.raises(InvalidParameterError):
        random_failure_sweep(2, 3, fractions=(1.0,))


def test_everything_failed_edge_cases():
    graph = undirected_graph(2, 2)
    everyone = set(graph.vertices())
    assert survivor_component_fraction(graph, everyone) == 0.0
    assert reachable_pair_fraction(graph, everyone) == 1.0  # vacuous
    assert path_stretch_samples(graph, everyone, 5) == []
