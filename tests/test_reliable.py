"""Tests for the stop-and-wait reliable transport and link failures."""

from __future__ import annotations

import pytest

from repro.core.routing import path_words
from repro.exceptions import SimulationError
from repro.network.reliable import ReliableTransport
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator


def _midpoint(x, y, d=2):
    router = BidirectionalOptimalRouter(use_wildcards=False)
    return path_words(x, router.plan(x, y), d)[1]


# ----------------------------------------------------------------------
# Link failures in the simulator
# ----------------------------------------------------------------------


def test_failed_link_drops_message():
    sim = Simulator(2, 3, reroute_on_failure=False)
    x, y = (0, 0, 1), (0, 1, 1)  # one hop apart
    sim.fail_link(x, y)
    sim.send(x, y, BidirectionalOptimalRouter())
    stats = sim.run()
    assert stats.dropped_count == 1


def test_failed_link_reroute_detours():
    sim = Simulator(2, 3, reroute_on_failure=True)
    x, y = (0, 0, 1), (0, 1, 1)
    sim.fail_link(x, y)
    message = sim.send(x, y, BidirectionalOptimalRouter())
    stats = sim.run()
    assert stats.delivered_count == 1
    assert message.hop_count > 1  # forced around the cut edge
    # The cut edge is never traversed.
    assert (x, y) not in list(zip(message.trace, message.trace[1:]))


def test_link_recovery_restores_direct_route():
    sim = Simulator(2, 3, reroute_on_failure=False)
    x, y = (0, 0, 1), (0, 1, 1)
    sim.fail_link(x, y)
    sim.recover_link(x, y)
    message = sim.send(x, y, BidirectionalOptimalRouter())
    sim.run()
    assert message.hop_count == 1


def test_one_directional_link_failure():
    sim = Simulator(2, 3, reroute_on_failure=True)
    x, y = (0, 0, 1), (0, 1, 1)
    sim.fail_link(x, y, both_directions=False)
    assert sim.is_link_failed(x, y)
    assert not sim.is_link_failed(y, x)
    # The reverse direction still works directly.
    message = sim.send(y, x, BidirectionalOptimalRouter())
    sim.run()
    assert message.hop_count == 1


def test_wildcard_resolution_avoids_failed_links():
    sim = Simulator(2, 4)
    x, y = (0, 1, 1, 0), (1, 1, 1, 0)  # witness path begins with L*
    # Cut the L0 option; the wildcard must pick L1.
    sim.fail_link(x, (1, 1, 0, 0))
    message = sim.send(x, y, BidirectionalOptimalRouter(use_wildcards=True))
    stats = sim.run()
    assert stats.delivered_count == 1
    assert message.trace[1] == (1, 1, 0, 1)


# ----------------------------------------------------------------------
# Reliable transport, healthy network
# ----------------------------------------------------------------------


def test_single_transfer_completes_without_retransmission():
    sim = Simulator(2, 4)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter())
    transfer = transport.send((0, 1, 1, 0), (1, 0, 0, 1), payload="hello")
    stats = transport.run()
    assert transfer.completed
    assert transfer.attempts == 1
    assert stats.retransmissions() == 0
    assert stats.acks_sent == 1
    assert transfer.acked_at >= transfer.data_delivered_at


def test_many_transfers_all_complete():
    sim = Simulator(2, 4)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter())
    transfers = []
    t = 0.0
    from repro.core.word import iter_words

    words = list(iter_words(2, 4))
    for i in range(20):
        transfers.append(transport.send(words[i % 16], words[(i * 7 + 3) % 16], at=t))
        t += 1.0
    stats = transport.run()
    assert stats.completed == sum(1 for tr in transfers if tr.source != tr.destination or True)
    assert all(tr.completed for tr in transfers)


def test_transport_rejects_bad_parameters():
    sim = Simulator(2, 3)
    with pytest.raises(SimulationError):
        ReliableTransport(sim, BidirectionalOptimalRouter(), timeout=0)
    sim2 = Simulator(2, 3)
    with pytest.raises(SimulationError):
        ReliableTransport(sim2, BidirectionalOptimalRouter(), max_attempts=0)
    sim3 = Simulator(2, 3)
    with pytest.raises(SimulationError):
        ReliableTransport(sim3, BidirectionalOptimalRouter(),
                          backoff_factor=0.5)
    sim4 = Simulator(2, 3)
    with pytest.raises(SimulationError):
        ReliableTransport(sim4, BidirectionalOptimalRouter(), jitter=-0.1)


def test_transport_chains_with_existing_hook():
    # A pre-installed delivery hook keeps firing alongside the transport's.
    sim = Simulator(2, 3)
    seen = []
    sim.on_deliver = lambda m, s: seen.append(m.control)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter())
    transfer = transport.send((0, 0, 1), (1, 1, 1), payload="hi")
    transport.run()
    assert transfer.completed
    # The old hook observed both the DATA delivery and the ACK delivery.
    assert len(seen) == 2


def test_add_deliver_hook_runs_new_then_old():
    sim = Simulator(2, 3)
    order = []
    sim.add_deliver_hook(lambda m, s: order.append("first"))
    sim.add_deliver_hook(lambda m, s: order.append("second"))
    sim.send((0, 0, 1), (1, 1, 1), BidirectionalOptimalRouter())
    sim.run()
    assert order == ["second", "first"]


# ----------------------------------------------------------------------
# Reliable transport over faults
# ----------------------------------------------------------------------


def test_retransmission_recovers_from_transient_node_failure():
    sim = Simulator(2, 3, reroute_on_failure=False)
    x, y = (0, 0, 1), (1, 1, 1)
    blocker = _midpoint(x, y)
    sim.fail_node(blocker, at=0.0)
    sim.recover_node(blocker, at=10.0)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter(use_wildcards=False),
                                  timeout=16.0)
    transfer = transport.send(x, y, at=1.0)
    stats = transport.run()
    assert transfer.completed
    assert transfer.attempts == 2  # first copy died at the failed site
    assert stats.retransmissions() == 1


def test_gives_up_after_max_attempts_when_destination_dead():
    sim = Simulator(2, 3, reroute_on_failure=False)
    sim.fail_node((1, 1, 1), at=0.0)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter(),
                                  timeout=8.0, max_attempts=3)
    transfer = transport.send((0, 0, 1), (1, 1, 1), at=0.0)
    stats = transport.run()
    assert not transfer.completed
    assert transfer.gave_up
    assert transfer.attempts == 3
    assert stats.abandoned == 1


def test_reroute_plus_retransmit_handles_permanent_cut():
    sim = Simulator(2, 3, reroute_on_failure=True)
    x, y = (0, 0, 1), (0, 1, 1)
    sim.fail_link(x, y)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter())
    transfer = transport.send(x, y, at=0.0)
    transport.run()
    # Rerouting saves even the first attempt; no retransmission needed.
    assert transfer.completed
    assert transfer.attempts == 1


def test_exponential_backoff_schedule_is_recorded():
    # Dead destination, factor 2: attempts at t=0, 8, 24 (gaps 8, 16).
    sim = Simulator(2, 3, reroute_on_failure=False)
    sim.fail_node((1, 1, 1), at=0.0)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter(),
                                  timeout=8.0, max_attempts=3,
                                  backoff_factor=2.0)
    transfer = transport.send((0, 0, 1), (1, 1, 1), at=0.0)
    stats = transport.run()
    assert transfer.gave_up
    assert transfer.attempt_times == [0.0, 8.0, 24.0]
    assert stats.retransmissions() == 2
    assert sim.stats.backoff_retries == 2


def test_backoff_cap_limits_the_wait():
    sim = Simulator(2, 3, reroute_on_failure=False)
    sim.fail_node((1, 1, 1), at=0.0)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter(),
                                  timeout=8.0, max_attempts=4,
                                  backoff_factor=4.0, max_backoff=10.0)
    transfer = transport.send((0, 0, 1), (1, 1, 1), at=0.0)
    transport.run()
    # Gaps: 8 (first), then capped at 10, 10 — not 32, 128.
    assert transfer.attempt_times == [0.0, 8.0, 18.0, 28.0]


def test_backoff_jitter_is_seeded_and_bounded():
    def attempt_times(seed):
        sim = Simulator(2, 3, reroute_on_failure=False)
        sim.fail_node((1, 1, 1), at=0.0)
        transport = ReliableTransport(sim, BidirectionalOptimalRouter(),
                                      timeout=8.0, max_attempts=3,
                                      backoff_factor=2.0, jitter=0.5,
                                      seed=seed)
        transfer = transport.send((0, 0, 1), (1, 1, 1), at=0.0)
        transport.run()
        return transfer.attempt_times

    first = attempt_times("storm-a")
    again = attempt_times("storm-a")
    other = attempt_times("storm-b")
    assert first == again  # same seed, same realised schedule
    assert first != other  # different streams actually differ
    gaps = [b - a for a, b in zip(first, first[1:])]
    # Each wait sits in [base, base * 1.5] for jitter=0.5.
    assert 8.0 <= gaps[0] <= 12.0
    assert 16.0 <= gaps[1] <= 24.0


def test_default_backoff_keeps_fixed_timeout_behaviour():
    sim = Simulator(2, 3, reroute_on_failure=False)
    sim.fail_node((1, 1, 1), at=0.0)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter(),
                                  timeout=8.0, max_attempts=3)
    transfer = transport.send((0, 0, 1), (1, 1, 1), at=0.0)
    transport.run()
    assert transfer.attempt_times == [0.0, 8.0, 16.0]


def test_duplicate_data_is_reacked_not_double_counted():
    # Force a retransmission whose first copy actually arrives: timeout
    # above the one-way delay but below the round trip, healthy net ->
    # duplicate DATA at the receiver.
    from repro.core.distance import undirected_distance

    x, y = (0, 1, 1, 0), (1, 0, 0, 1)
    one_way = undirected_distance(x, y) * 3.0
    sim = Simulator(2, 4, link_latency=3.0)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter(),
                                  timeout=one_way + 1.0)
    transfer = transport.send(x, y, at=0.0)
    stats = transport.run()
    assert transfer.completed
    assert stats.data_sent >= 2  # the impatient retransmit happened
    assert stats.acks_sent == stats.data_sent  # every copy re-ACKed
    assert stats.completed == 1


# ----------------------------------------------------------------------
# Exactly-once delivery to the application (duplicate suppression)
# ----------------------------------------------------------------------


def test_retransmitted_duplicates_are_suppressed_not_redelivered():
    # One hop each way: DATA lands at t=1, the ACK returns at t=2.  An
    # impatient timeout (1.5) fires while the ACK is still in flight, so
    # a second DATA copy goes out and arrives after the first -- the
    # classic stop-and-wait duplicate.
    sim = Simulator(2, 3)
    delivered = []
    transport = ReliableTransport(
        sim, BidirectionalOptimalRouter(), timeout=1.5, max_attempts=3,
        on_payload=lambda tid, body, dest: delivered.append(
            (tid, body, dest)))
    x, y = (0, 0, 1), (0, 1, 1)
    transfer = transport.send(x, y, payload="hello")
    stats = transport.run()

    assert transfer.completed
    assert transfer.attempts == 2          # the impatient retransmit
    # The application saw the payload exactly once...
    assert delivered == [(transfer.transfer_id, "hello", y)]
    # ...while the duplicate was recognised and counted...
    assert stats.duplicates_suppressed == 1
    # ...and still re-ACKed, as stop-and-wait requires (the sender may
    # have missed the first ACK).
    assert stats.acks_sent == 2
    assert stats.data_sent == 2


def test_on_payload_is_optional_and_duplicates_still_counted():
    sim = Simulator(2, 3)
    transport = ReliableTransport(sim, BidirectionalOptimalRouter(),
                                  timeout=1.5, max_attempts=3)
    transfer = transport.send((0, 0, 1), (0, 1, 1), payload=b"x")
    stats = transport.run()
    assert transfer.completed
    assert stats.duplicates_suppressed == 1
