"""Tests for static congestion analysis and DOT export."""

from __future__ import annotations

import pytest

from repro.analysis.dot import graph_to_dot, route_to_dot, suffix_tree_to_dot
from repro.analysis.load import (
    adversarial_patterns,
    congestion,
    link_loads,
    path_links,
    permutation_demands,
)
from repro.core.routing import Direction, RoutingStep
from repro.core.suffix_tree import SuffixTree
from repro.core.word import iter_words
from repro.graphs.debruijn import directed_graph, undirected_graph
from repro.network.router import BidirectionalOptimalRouter, TrivialRouter


# ----------------------------------------------------------------------
# path_links
# ----------------------------------------------------------------------


def test_path_links_follow_the_trace():
    path = [RoutingStep(Direction.LEFT, 1), RoutingStep(Direction.RIGHT, 0)]
    links = path_links((0, 0, 0), path, 2)
    assert links == [((0, 0, 0), (0, 0, 1)), ((0, 0, 1), (0, 0, 0))]


def test_path_links_resolve_wildcards_to_zero():
    path = [RoutingStep(Direction.LEFT, None)]
    assert path_links((0, 1, 1), path, 2) == [((0, 1, 1), (1, 1, 0))]


# ----------------------------------------------------------------------
# Congestion
# ----------------------------------------------------------------------


def test_link_loads_count_shared_links():
    router = TrivialRouter()
    demands = [((0, 0, 0), (1, 1, 1)), ((0, 0, 0), (1, 1, 1))]
    loads = link_loads(demands, router, 2)
    assert all(load == 2 for load in loads.values())
    assert len(loads) == 3


def test_congestion_report_consistency():
    router = BidirectionalOptimalRouter(use_wildcards=False)
    demands = [(x, y) for x in iter_words(2, 3) for y in iter_words(2, 3) if x != y]
    report = congestion(demands, router, 2)
    assert report.demands == 56
    assert report.total_hops == sum(len(router.plan(x, y)) for x, y in demands)
    assert report.max_load >= report.mean_load > 0
    assert 0 < report.fairness <= 1
    assert report.mean_hops == pytest.approx(report.total_hops / 56)


def test_optimal_congestion_no_worse_total_than_trivial():
    d, k = 2, 4
    demands = [(x, tuple(reversed(x))) for x in iter_words(d, k) if x != tuple(reversed(x))]
    optimal = congestion(demands, BidirectionalOptimalRouter(use_wildcards=False), d)
    trivial = congestion(demands, TrivialRouter(), d)
    assert optimal.total_hops < trivial.total_hops
    assert optimal.mean_hops < trivial.mean_hops


def test_permutation_demands_skip_fixed_points():
    demands = permutation_demands(2, 3, lambda w: tuple(reversed(w)))
    assert all(x != y for x, y in demands)
    # Palindromes of length 3 over {0,1}: 000, 010, 101, 111 -> 4 fixed.
    assert len(demands) == 8 - 4


def test_adversarial_patterns_cover_the_classics():
    patterns = adversarial_patterns(2, 4)
    assert set(patterns) == {"bit-reversal", "complement", "cyclic-shift", "swap-halves"}
    for demands in patterns.values():
        assert demands
        assert all(x != y for x, y in demands)


def test_empty_demand_set():
    report = congestion([], TrivialRouter(), 2)
    assert report.demands == 0 and report.max_load == 0 and report.mean_hops == 0.0


# ----------------------------------------------------------------------
# DOT export
# ----------------------------------------------------------------------


def test_graph_to_dot_directed_structure():
    dot = graph_to_dot(directed_graph(2, 2))
    assert dot.startswith("digraph")
    assert '"00" -> "01"' in dot
    assert dot.rstrip().endswith("}")


def test_graph_to_dot_undirected_uses_edge_op():
    dot = graph_to_dot(undirected_graph(2, 2))
    assert dot.startswith("graph")
    assert "--" in dot and "->" not in dot.replace("--", "")


def test_graph_to_dot_highlighting():
    trace = [(0, 0), (0, 1), (1, 1)]
    dot = graph_to_dot(undirected_graph(2, 2), highlight_path=trace)
    assert "lightblue" in dot
    assert "penwidth=2" in dot


def test_route_to_dot_chain():
    dot = route_to_dot([(0, 0, 1), (0, 1, 1), (1, 1, 1)])
    assert '"001" -> "011"' in dot
    assert "hop 2" in dot


def test_route_to_dot_single_vertex():
    dot = route_to_dot([(0, 1)])
    assert '"01"' in dot


def test_suffix_tree_to_dot_labels():
    tree = SuffixTree((0, 1, 0))
    dot = suffix_tree_to_dot(tree)
    assert dot.startswith("digraph")
    assert "label=" in dot
    # Leaves carry their suffix index as a label.
    assert 'label="0"' in dot


def test_dot_outputs_are_parseable_brackets():
    for dot in (
        graph_to_dot(directed_graph(2, 2)),
        route_to_dot([(0, 0), (0, 1)]),
        suffix_tree_to_dot(SuffixTree((0, 1))),
    ):
        assert dot.count("{") == dot.count("}") == 1
