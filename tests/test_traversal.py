"""Tests for :mod:`repro.graphs.traversal` — the BFS substrate."""

from __future__ import annotations

import pytest

from repro.core.distance import directed_distance, undirected_distance
from repro.exceptions import RoutingError
from repro.graphs.debruijn import directed_graph, undirected_graph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_parents,
    bfs_path,
    eccentricities,
    next_hop_table,
)
from tests.conftest import all_words


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2)])
def test_bfs_distances_match_distance_functions(d, k):
    gd = directed_graph(d, k)
    gu = undirected_graph(d, k)
    for x in all_words(d, k):
        dd = bfs_distances(gd, x)
        du = bfs_distances(gu, x)
        for y in all_words(d, k):
            assert dd[y] == directed_distance(x, y)
            assert du[y] == undirected_distance(x, y)


def test_bfs_distances_with_custom_neighbor_fn():
    g = directed_graph(2, 3)
    # Reverse BFS: distances *to* the source along arcs.
    backward = bfs_distances(g, (0, 1, 1), neighbor_fn=g.in_neighbors)
    for y in all_words(2, 3):
        assert backward[y] == directed_distance(y, (0, 1, 1))


def test_bfs_parents_form_a_tree():
    g = undirected_graph(2, 3)
    parents = bfs_parents(g, (0, 0, 0))
    assert parents[(0, 0, 0)] is None
    for vertex, parent in parents.items():
        if parent is not None:
            assert g.has_edge(parent, vertex)


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2)])
def test_bfs_path_is_shortest_and_valid(d, k):
    g = undirected_graph(d, k)
    for x in all_words(d, k):
        for y in all_words(d, k):
            path = bfs_path(g, x, y)
            assert path[0] == x and path[-1] == y
            assert len(path) - 1 == undirected_distance(x, y)
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)


def test_bfs_path_same_vertex():
    g = undirected_graph(2, 3)
    assert bfs_path(g, (0, 1, 1), (0, 1, 1)) == [(0, 1, 1)]


def test_bfs_path_respects_avoid_set():
    g = undirected_graph(2, 3)
    direct = bfs_path(g, (0, 0, 1), (1, 1, 1))
    blocked = direct[1]  # remove the midpoint of the shortest route
    detour = bfs_path(g, (0, 0, 1), (1, 1, 1), avoid=[blocked])
    assert blocked not in detour
    assert len(detour) >= len(direct)


def test_bfs_path_raises_when_blocked_everywhere():
    g = undirected_graph(2, 2)
    others = [w for w in all_words(2, 2) if w not in ((0, 0), (1, 1))]
    with pytest.raises(RoutingError):
        bfs_path(g, (0, 0), (1, 1), avoid=others)


def test_bfs_path_rejects_blocked_endpoints():
    g = undirected_graph(2, 2)
    with pytest.raises(RoutingError):
        bfs_path(g, (0, 0), (1, 1), avoid=[(0, 0)])


@pytest.mark.parametrize("directed", [True, False])
def test_next_hop_table_routes_optimally(directed):
    d, k = 2, 3
    g = directed_graph(d, k) if directed else undirected_graph(d, k)
    dist_fn = directed_distance if directed else undirected_distance
    for target in all_words(d, k):
        table = next_hop_table(g, target)
        for source in all_words(d, k):
            if source == target:
                continue
            hop = table[source]
            assert g.has_edge(source, hop)
            assert dist_fn(hop, target) == dist_fn(source, target) - 1


def test_next_hop_table_omits_target():
    g = undirected_graph(2, 3)
    table = next_hop_table(g, (1, 1, 1))
    assert (1, 1, 1) not in table


def test_eccentricities_all_equal_diameter_for_small_graph():
    # Every vertex of DG(2, 2) reaches everything within k = 2.
    g = undirected_graph(2, 2)
    eccs = eccentricities(g)
    assert max(eccs.values()) == 2
    assert all(1 <= e <= 2 for e in eccs.values())
