"""Meta-test: every public item in the library carries a docstring.

Deliverable (e) of the reproduction demands doc comments on every public
item; this test makes the requirement executable so it cannot rot.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports are documented at their definition site
        if inspect.isfunction(obj) or inspect.isclass(obj):
            yield name, obj


def test_module_list_is_nonempty():
    assert len(MODULES) > 25


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_functions_and_classes_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"
