"""Tests for the discrete-event DN(d, k) simulator."""

from __future__ import annotations

import random

import pytest

from repro.core.distance import directed_distance, undirected_distance
from repro.graphs.debruijn import directed_graph, undirected_graph
from repro.network.router import (
    BidirectionalOptimalRouter,
    TableDrivenRouter,
    TrivialRouter,
    UnidirectionalOptimalRouter,
    step_between,
    vertex_path_to_steps,
)
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import (
    all_pairs_once,
    bit_reversal,
    complement_traffic,
    hotspot,
    permutation_traffic,
    random_pairs,
    uniform_random,
)
from repro.exceptions import RoutingError
from tests.conftest import all_words


# ----------------------------------------------------------------------
# Routers in isolation
# ----------------------------------------------------------------------


def test_step_between_left_and_right():
    from repro.core.routing import Direction

    step = step_between((0, 0, 1), (0, 1, 1), 2)
    assert step.direction == Direction.LEFT and step.digit == 1
    step = step_between((0, 1, 1), (0, 0, 1), 2)
    assert step.direction == Direction.RIGHT and step.digit == 0


def test_step_between_rejects_non_neighbor():
    with pytest.raises(RoutingError):
        step_between((0, 0, 0), (1, 1, 1), 2)


def test_vertex_path_to_steps_roundtrip():
    from repro.core.routing import apply_path

    vertices = [(0, 0, 1), (0, 1, 1), (1, 1, 0), (1, 0, 0)]
    steps = vertex_path_to_steps(vertices, 2)
    assert apply_path(vertices[0], steps, 2) == vertices[-1]


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2)])
def test_table_router_produces_shortest_paths(d, k):
    g = undirected_graph(d, k)
    router = TableDrivenRouter(g)
    for x in all_words(d, k):
        for y in all_words(d, k):
            path = router.plan(x, y)
            assert len(path) == undirected_distance(x, y)
    assert router.memory_cells() > 0


def test_table_router_directed():
    g = directed_graph(2, 3)
    router = TableDrivenRouter(g)
    for x in all_words(2, 3):
        for y in all_words(2, 3):
            assert len(router.plan(x, y)) == directed_distance(x, y)


def test_optimal_routers_report_zero_memory():
    assert BidirectionalOptimalRouter().memory_cells() == 0
    assert UnidirectionalOptimalRouter().memory_cells() == 0


def test_trivial_router_always_k_hops():
    router = TrivialRouter()
    assert len(router.plan((0, 1, 1), (1, 1, 0))) == 3
    assert router.plan((0, 1, 1), (0, 1, 1)) == []


# ----------------------------------------------------------------------
# Single-message simulations
# ----------------------------------------------------------------------


def test_single_message_delivery_trace_and_latency():
    sim = Simulator(2, 3)
    message = sim.send((0, 1, 1), (1, 1, 0), BidirectionalOptimalRouter(), at=2.0)
    stats = sim.run()
    assert stats.delivered_count == 1
    assert message.delivered_at is not None
    assert message.trace[0] == (0, 1, 1)
    assert message.trace[-1] == (1, 1, 0)
    # Uncontended: latency = hops * link latency.
    assert message.latency == message.hop_count * 1.0
    assert message.hop_count == undirected_distance((0, 1, 1), (1, 1, 0))


def test_self_message_delivers_immediately():
    sim = Simulator(2, 3)
    message = sim.send((0, 1, 1), (0, 1, 1), BidirectionalOptimalRouter(), at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 1
    assert message.latency == 0.0


def test_unidirectional_network_uses_algorithm1():
    sim = Simulator(2, 4, bidirectional=False)
    x, y = (0, 1, 1, 0), (1, 1, 0, 0)
    message = sim.send(x, y, UnidirectionalOptimalRouter())
    sim.run()
    assert message.hop_count == directed_distance(x, y)


def test_trivial_router_takes_k_hops_in_simulation():
    sim = Simulator(2, 4)
    message = sim.send((0, 1, 1, 0), (1, 1, 0, 0), TrivialRouter())
    sim.run()
    assert message.hop_count == 4


def test_contention_adds_queueing_delay():
    sim = Simulator(2, 3)
    router = TrivialRouter()
    # Two messages fight over the same first link (000 -> 001).
    m1 = sim.send((0, 0, 0), (0, 0, 1), router, at=0.0)
    m2 = sim.send((0, 0, 0), (0, 0, 1), router, at=0.0)
    sim.run()
    latencies = sorted([m1.latency, m2.latency])
    assert latencies[0] < latencies[1]
    assert sim.stats.mean_queue_delay() > 0.0


def test_link_loads_are_recorded():
    sim = Simulator(2, 3)
    sim.send((0, 0, 1), (1, 1, 1), BidirectionalOptimalRouter())
    stats = sim.run()
    assert sum(stats.link_loads.values()) == stats.delivered[0].hop_count


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def test_uniform_workload_everything_delivered():
    sim = Simulator(2, 3)
    workload = list(uniform_random(2, 3, cycles=20, injection_rate=0.2, rng=random.Random(1)))
    stats = run_workload(sim, BidirectionalOptimalRouter(), workload)
    assert stats.delivered_count == len(workload)
    assert stats.dropped_count == 0
    assert stats.throughput() > 0


def test_all_pairs_once_mean_hops_equals_mean_distance():
    d, k = 2, 3
    sim = Simulator(d, k, link_latency=1.0)
    # Huge spacing: zero contention, hop counts are pure distances.
    workload = list(all_pairs_once(d, k, spacing=10.0))
    stats = run_workload(sim, BidirectionalOptimalRouter(), workload)
    n = d**k
    expected_mean = (  # mean over ordered distinct pairs
        sum(undirected_distance(x, y) for x in all_words(d, k) for y in all_words(d, k))
        / (n * n - n)
    )
    assert stats.mean_hops() == pytest.approx(expected_mean)


def test_permutation_traffic_shape():
    events = list(permutation_traffic(2, 3, cycles=2, rng=random.Random(3)))
    sources = [s for _, s, _ in events]
    assert len(events) <= 2 * 8
    assert all(s != t for _, s, t in events)
    # Same partner in both cycles.
    half = len(events) // 2
    assert events[:half] == [(t - 1.0, s, d) for t, s, d in events[half:]]


def test_hotspot_traffic_targets_hotspot():
    events = list(hotspot(2, 3, cycles=50, injection_rate=1.0, hotspot_fraction=1.0,
                          target=(1, 1, 1), rng=random.Random(0)))
    assert events
    assert all(dst == (1, 1, 1) for _, _, dst in events)


def test_bit_reversal_and_complement_patterns():
    reversal = list(bit_reversal(2, 3))
    assert all(dst == tuple(reversed(src)) for _, src, dst in reversal)
    complement = list(complement_traffic(2, 3))
    assert all(dst == tuple(1 - digit for digit in src) for _, src, dst in complement)
    # Palindromes / self-complementary words are skipped.
    assert all(src != dst for _, src, dst in reversal + complement)


def test_random_pairs_deterministic_and_distinct():
    a = random_pairs(2, 4, count=10, rng=random.Random(7))
    b = random_pairs(2, 4, count=10, rng=random.Random(7))
    assert a == b
    assert all(s != t for _, s, t in a)


def test_run_until_limits_horizon():
    sim = Simulator(2, 3)
    sim.send((0, 0, 0), (1, 1, 1), TrivialRouter(), at=100.0)
    stats = sim.run(until=10.0)
    assert stats.delivered_count == 0
    stats = sim.run()
    assert stats.delivered_count == 1


# ----------------------------------------------------------------------
# Wildcard load balancing (the paper's * remark)
# ----------------------------------------------------------------------


def test_wildcards_spread_load_at_least_as_fairly():
    d, k = 2, 5
    workload = random_pairs(d, k, count=300, rng=random.Random(11))
    sim_wild = Simulator(d, k)
    stats_wild = run_workload(sim_wild, BidirectionalOptimalRouter(use_wildcards=True), list(workload))
    sim_fixed = Simulator(d, k)
    stats_fixed = run_workload(sim_fixed, BidirectionalOptimalRouter(use_wildcards=False), list(workload))
    assert stats_wild.delivered_count == stats_fixed.delivered_count == 300
    # Same shortest-path lengths either way...
    assert stats_wild.mean_hops() == pytest.approx(stats_fixed.mean_hops())
    # ...but wildcard resolution must not concentrate load more than the
    # all-zeros filler does.
    assert stats_wild.max_link_load() <= stats_fixed.max_link_load()


def test_random_minimal_router_optimal_but_diverse():
    from repro.network.router import RandomMinimalRouter

    d, k = 2, 5
    router = RandomMinimalRouter(d, seed=3)
    x, y = (0, 0, 0, 0, 0), (1, 1, 1, 1, 1)
    from repro.core.distance import undirected_distance
    from repro.core.routing import apply_path

    expected = undirected_distance(x, y)
    routes = set()
    for _ in range(40):
        path = router.plan(x, y)
        assert len(path) == expected
        assert apply_path(x, path, d) == y
        routes.add(tuple(path))
    assert len(routes) > 1  # genuinely randomised


def test_random_minimal_router_in_simulation():
    import random as _random

    from repro.network.router import BidirectionalOptimalRouter, RandomMinimalRouter

    d, k = 2, 5
    workload = random_pairs(d, k, count=150, rng=_random.Random(5))
    sim_fixed = Simulator(d, k)
    stats_fixed = run_workload(sim_fixed, BidirectionalOptimalRouter(use_wildcards=False),
                               list(workload))
    sim_random = Simulator(d, k)
    stats_random = run_workload(sim_random, RandomMinimalRouter(d, seed=5), list(workload))
    assert stats_random.delivered_count == stats_fixed.delivered_count == 150
    assert stats_random.mean_hops() == pytest.approx(stats_fixed.mean_hops())


def test_all_to_all_pattern_counts():
    from repro.network.traffic import all_to_all

    events = list(all_to_all(2, 3, rounds=2, spacing=50.0))
    n = 8
    assert len(events) == 2 * n * (n - 1)
    assert all(s != t for _, s, t in events)
    times = {t for t, _, _ in events}
    assert times == {0.0, 50.0}


def test_all_to_all_simulation_delivers_everything():
    from repro.network.traffic import all_to_all

    sim = Simulator(2, 3)
    stats = run_workload(sim, BidirectionalOptimalRouter(), list(all_to_all(2, 3)))
    assert stats.delivered_count == 8 * 7
    assert stats.dropped_count == 0


def test_valiant_router_reaches_destination_with_two_legs():
    from repro.network.router import ValiantRouter
    from repro.core.routing import apply_path
    from repro.core.distance import undirected_distance

    d, k = 2, 5
    router = ValiantRouter(d, k, seed=3)
    x, y = (0, 1, 1, 0, 1), (1, 0, 0, 1, 0)
    for _ in range(20):
        path = router.plan(x, y)
        assert apply_path(x, path, d) == y
        assert len(path) <= 2 * k  # two optimal legs
        assert len(path) >= undirected_distance(x, y) or len(path) == 0


def test_valiant_router_randomises_per_message():
    from repro.network.router import ValiantRouter

    router = ValiantRouter(2, 5, seed=9)
    x, y = (0, 0, 0, 0, 0), (1, 1, 1, 1, 1)
    plans = {tuple(router.plan(x, y)) for _ in range(20)}
    assert len(plans) > 1


def test_valiant_in_simulation_delivers():
    from repro.network.router import ValiantRouter

    d, k = 2, 4
    sim = Simulator(d, k)
    workload = random_pairs(d, k, count=50, spacing=1.0, rng=random.Random(2))
    stats = run_workload(sim, ValiantRouter(d, k, seed=4), workload)
    assert stats.delivered_count == 50
    assert stats.mean_hops() <= 2 * k


def test_workload_save_load_roundtrip(tmp_path):
    from repro.network.traffic import load_workload, save_workload

    original = random_pairs(2, 4, count=25, spacing=0.5, rng=random.Random(3))
    path = tmp_path / "workload.jsonl"
    count = save_workload(iter(original), str(path))
    assert count == 25
    restored = load_workload(str(path))
    assert restored == original
    # Replaying the restored workload gives identical results.
    sim_a = Simulator(2, 4)
    stats_a = run_workload(sim_a, BidirectionalOptimalRouter(use_wildcards=False),
                           list(original))
    sim_b = Simulator(2, 4)
    stats_b = run_workload(sim_b, BidirectionalOptimalRouter(use_wildcards=False),
                           restored)
    assert stats_a.mean_hops() == stats_b.mean_hops()
    assert stats_a.mean_latency() == stats_b.mean_latency()


# ----------------------------------------------------------------------
# Hop-limit (TTL) guard and simulator timers
# ----------------------------------------------------------------------


def test_hop_limit_drops_a_looping_message():
    from repro.core.routing import Direction, RoutingStep
    from repro.network.router import Router

    class RotateForever(Router):
        """A broken stateless router: rotate left, never arrive."""

        name = "rotate"
        stateless = True

        def next_hop(self, current, destination, cost_fn=None):
            return RoutingStep(Direction.LEFT, current[0])

    sim = Simulator(2, 3, hop_limit=10)
    # (0,0,1) rotated left cycles 001 -> 010 -> 100 -> 001 forever; the
    # destination is never on that orbit.
    sim.send((0, 0, 1), (1, 1, 1), RotateForever())
    stats = sim.run()  # terminates: the TTL guard fires
    assert stats.hop_limit_dropped == 1
    assert stats.delivered_count == 0
    assert stats.dropped_count == 1
    reason = stats.dropped[0][1]
    assert "hop limit" in reason


def test_hop_limit_default_scales_with_k_and_is_overridable():
    assert Simulator(2, 3).hop_limit == 16 * 3 + 64
    assert Simulator(2, 5).hop_limit == 16 * 5 + 64
    assert Simulator(2, 4, hop_limit=7).hop_limit == 7


def test_hop_limit_leaves_normal_traffic_alone():
    sim = Simulator(2, 4)
    workload = random_pairs(2, 4, count=40, spacing=1.0,
                            rng=random.Random(11))
    stats = run_workload(sim, BidirectionalOptimalRouter(use_wildcards=False),
                         workload)
    assert stats.delivered_count == 40
    assert stats.hop_limit_dropped == 0


def test_call_at_runs_callbacks_in_time_order():
    sim = Simulator(2, 3)
    fired = []
    sim.call_at(5.0, lambda s: fired.append(("b", s.now)))
    sim.call_at(1.0, lambda s: fired.append(("a", s.now)))

    def chain(s):
        fired.append(("c", s.now))
        s.call_at(s.now + 2.0, lambda inner: fired.append(("d", inner.now)))

    sim.call_at(9.0, chain)
    sim.run()
    assert fired == [("a", 1.0), ("b", 5.0), ("c", 9.0), ("d", 11.0)]


def test_call_at_interleaves_with_message_events():
    sim = Simulator(2, 3)
    snapshots = []
    sim.call_at(0.5, lambda s: snapshots.append(s.stats.delivered_count))
    sim.call_at(50.0, lambda s: snapshots.append(s.stats.delivered_count))
    sim.send((0, 0, 1), (1, 1, 0), BidirectionalOptimalRouter(), at=0.0)
    sim.run()
    # Before the message lands nothing is delivered; afterwards it is.
    assert snapshots == [0, 1]


def test_event_hooks_chain_and_failed_sites_snapshots():
    sim = Simulator(2, 3)
    seen = []
    sim.add_event_hook(lambda event, s: seen.append(("old", event.kind)))
    sim.add_event_hook(lambda event, s: seen.append(("new", event.kind)))
    site = (0, 0, 1)
    sim.fail_node(site, at=1.0)
    sim.run()
    # The newest hook runs first, then the older one; both saw the event.
    assert [tag for tag, _ in seen[:2]] == ["new", "old"]
    assert seen[0][1] == seen[1][1]
    assert sim.failed_sites == frozenset([site])
    sim.recover_node(site, at=2.0)
    sim.run()
    assert sim.failed_sites == frozenset()
