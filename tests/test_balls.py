"""Tests for the reachability-ball analysis."""

from __future__ import annotations

import pytest

from repro.analysis.balls import (
    ball_deficit_rows,
    directed_ball_profile,
    mean_ball_profile,
    model_ball_profile,
)
from repro.core.distance import directed_distance
from repro.core.word import iter_words


def test_profile_endpoints():
    profile = directed_ball_profile((0, 1, 1), 2)
    assert profile[0] == 1
    assert profile[-1] == 8  # ball_k is the whole graph


def test_profile_is_monotone_and_bounded():
    for x in iter_words(2, 4):
        profile = directed_ball_profile(x, 2)
        assert profile == sorted(profile)
        for t, size in enumerate(profile):
            # Union bound: at most 1 + d + ... + d^t words within t steps.
            assert size <= sum(2**j for j in range(t + 1))
            # And at least the model's d^t (the exact-t layer alone).
            assert size >= 2**t or t == len(x)


def test_profile_matches_distance_function():
    d, k = 2, 4
    for x in iter_words(d, k):
        profile = directed_ball_profile(x, d)
        for t in range(k + 1):
            expected = sum(1 for y in iter_words(d, k) if directed_distance(x, y) <= t)
            assert profile[t] == expected


def test_constant_word_has_smallest_radius1_ball():
    # 000...'s self-loop wastes one of its d out-edges, so its radius-1
    # ball (self + d-1 others) is the smallest possible.
    d, k = 2, 5
    const_profile = directed_ball_profile((0,) * k, d)
    assert const_profile[1] == d  # self + (d-1) fresh neighbors
    for x in iter_words(d, k):
        profile = directed_ball_profile(x, d)
        assert profile[1] >= const_profile[1]


def test_mean_profile_between_model_and_union_bound():
    d, k = 2, 5
    mean = mean_ball_profile(d, k)
    model = model_ball_profile(d, k)
    for t in range(k + 1):
        assert mean[t] >= model[t] - 1e-9
        assert mean[t] <= sum(d**j for j in range(t + 1)) + 1e-9


def test_deficit_rows_explain_eq5_gap():
    rows = ball_deficit_rows(2, 5)
    # Ratio is exactly 1 at the endpoints and strictly above in between.
    assert rows[0][3] == pytest.approx(1.0)
    assert rows[-1][3] == pytest.approx(1.0)
    for t, mean, model, ratio in rows[1:-1]:
        assert ratio > 1.0
        assert mean == pytest.approx(model * ratio)


def test_model_profile_values():
    assert model_ball_profile(3, 3) == [1, 3, 9, 27]
