"""Tests for Equation (5) and the average-distance numerics (E2/E3 backing)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.average_distance import (
    directed_average_distance_closed_form,
    directed_average_distance_exact,
    directed_average_distance_sampled,
    directed_distance_distribution_exact,
    directed_distance_distribution_model,
    undirected_average_distance_exact,
    undirected_average_distance_sampled,
    undirected_distance_distribution_exact,
)
from repro.exceptions import InvalidParameterError


# ----------------------------------------------------------------------
# Equation (5) closed form
# ----------------------------------------------------------------------


def test_closed_form_binary_special_case():
    # Paper: δ(2, k) = k − 1 + 1/2^k.
    for k in range(1, 10):
        expected = k - 1 + 1.0 / 2**k
        assert directed_average_distance_closed_form(2, k) == pytest.approx(expected)


def test_closed_form_matches_summation_definition():
    # δ(d, k) = Σ i α^{k-i} ᾱ, the pre-simplification form.
    for d in (2, 3, 5):
        for k in range(1, 8):
            alpha = 1.0 / d
            expected = sum(i * alpha ** (k - i) * (1 - alpha) for i in range(1, k + 1))
            assert directed_average_distance_closed_form(d, k) == pytest.approx(expected)


def test_closed_form_increases_with_k():
    values = [directed_average_distance_closed_form(3, k) for k in range(1, 8)]
    assert values == sorted(values)


def test_closed_form_rejects_bad_parameters():
    with pytest.raises(InvalidParameterError):
        directed_average_distance_closed_form(1, 3)


# ----------------------------------------------------------------------
# The model distribution behind (5)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2), (4, 3)])
def test_model_distribution_sums_to_one(d, k):
    dist = directed_distance_distribution_model(d, k)
    assert sum(dist.values()) == pytest.approx(1.0)
    assert dist[0] == pytest.approx((1.0 / d) ** k)


def test_model_mean_equals_closed_form():
    for d, k in [(2, 4), (3, 3)]:
        dist = directed_distance_distribution_model(d, k)
        mean = sum(i * p for i, p in dist.items())
        assert mean == pytest.approx(directed_average_distance_closed_form(d, k))


# ----------------------------------------------------------------------
# Exact enumeration, and the reproduction finding that (5) overestimates
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)])
def test_eq5_is_a_strict_upper_bound_for_k_at_least_2(d, k):
    exact = directed_average_distance_exact(d, k)
    closed = directed_average_distance_closed_form(d, k)
    assert closed > exact
    # ... but never by more than one hop at these sizes.
    assert closed - exact < 1.0


def test_eq5_exact_at_k1():
    # For k = 1 "overlap >= 1" really is the single event x == y, so the
    # model distribution is exact and (5) agrees with enumeration.
    assert directed_average_distance_exact(2, 1) == pytest.approx(
        directed_average_distance_closed_form(2, 1)
    )


def test_exact_directed_known_value():
    # Enumerated by hand-checked script: DG(2, 3) has mean 1.84375.
    assert directed_average_distance_exact(2, 3) == pytest.approx(1.84375)


def test_exact_undirected_known_value():
    # Cross-checked against all-pairs BFS: DG(2, 3) has mean 1.4375.
    assert undirected_average_distance_exact(2, 3) == pytest.approx(1.4375)


def test_undirected_mean_below_directed_mean():
    for d, k in [(2, 3), (2, 4), (3, 3)]:
        assert undirected_average_distance_exact(d, k) < directed_average_distance_exact(d, k)


@pytest.mark.parametrize("kind", ["directed", "undirected"])
def test_exact_distributions_sum_to_one(kind):
    fn = (
        directed_distance_distribution_exact
        if kind == "directed"
        else undirected_distance_distribution_exact
    )
    dist = fn(2, 4)
    assert sum(dist.values()) == pytest.approx(1.0)
    assert all(0 <= value <= 4 for value in dist)
    assert dist[0] == pytest.approx(1.0 / 16)  # only X == Y has distance 0


# ----------------------------------------------------------------------
# Sampling estimators
# ----------------------------------------------------------------------


def test_sampled_directed_close_to_exact():
    rng = random.Random(1234)
    exact = directed_average_distance_exact(2, 5)
    sampled = directed_average_distance_sampled(2, 5, samples=4000, rng=rng)
    assert abs(sampled - exact) < 5 * 5 / (2 * math.sqrt(4000)) + 0.05


def test_sampled_undirected_close_to_exact():
    rng = random.Random(99)
    exact = undirected_average_distance_exact(2, 5)
    sampled = undirected_average_distance_sampled(2, 5, samples=4000, rng=rng)
    assert abs(sampled - exact) < 0.2


def test_sampling_is_reproducible_with_seed():
    a = undirected_average_distance_sampled(2, 6, samples=300, rng=random.Random(5))
    b = undirected_average_distance_sampled(2, 6, samples=300, rng=random.Random(5))
    assert a == b
