"""Tests for generalized de Bruijn graphs GDB(n, d) (Imase–Itoh)."""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import directed_distance
from repro.core.word import int_to_word
from repro.exceptions import InvalidParameterError, RoutingError
from repro.graphs.generalized import GeneralizedDeBruijnGraph, matches_debruijn

CASES = [(8, 2), (10, 2), (12, 2), (13, 2), (9, 3), (20, 3), (17, 4), (5, 2)]


def _bfs(graph: GeneralizedDeBruijnGraph, source: int):
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n,d", CASES)
def test_out_degree_at_most_d_and_all_vertices_covered(n, d):
    graph = GeneralizedDeBruijnGraph(n, d)
    assert graph.order == n
    for u in graph.vertices():
        nbrs = graph.out_neighbors(u)
        assert 1 <= len(nbrs) <= d
        assert all(0 <= v < n for v in nbrs)


@pytest.mark.parametrize("n,d", CASES)
def test_in_neighbors_invert_out_neighbors(n, d):
    graph = GeneralizedDeBruijnGraph(n, d)
    for u in graph.vertices():
        for v in graph.out_neighbors(u):
            assert u in graph.in_neighbors(v), (u, v)
    for v in graph.vertices():
        for u in graph.in_neighbors(v):
            assert v in graph.out_neighbors(u), (u, v)


def test_edges_have_no_loops_or_duplicates():
    graph = GeneralizedDeBruijnGraph(10, 2)
    edges = list(graph.edges())
    assert len(edges) == len(set(edges))
    assert all(u != v for u, v in edges)


def test_invalid_parameters_rejected():
    with pytest.raises(InvalidParameterError):
        GeneralizedDeBruijnGraph(10, 1)
    with pytest.raises(InvalidParameterError):
        GeneralizedDeBruijnGraph(1, 2)
    with pytest.raises(InvalidParameterError):
        GeneralizedDeBruijnGraph(10, 2).distance(10, 0)


# ----------------------------------------------------------------------
# Distance and routing vs BFS
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n,d", CASES)
def test_distance_matches_bfs_all_pairs(n, d):
    graph = GeneralizedDeBruijnGraph(n, d)
    for u in graph.vertices():
        oracle = _bfs(graph, u)
        for v in graph.vertices():
            assert graph.distance(u, v) == oracle[v], (u, v)


@pytest.mark.parametrize("n,d", CASES)
def test_route_lands_on_target_with_optimal_length(n, d):
    graph = GeneralizedDeBruijnGraph(n, d)
    for u in graph.vertices():
        for v in graph.vertices():
            digits = graph.route(u, v)
            assert len(digits) == graph.distance(u, v)
            assert graph.apply_route(u, digits) == v


@pytest.mark.parametrize("n,d", CASES)
def test_diameter_bound_holds(n, d):
    graph = GeneralizedDeBruijnGraph(n, d)
    bound = graph.diameter_bound()
    worst = max(graph.distance(u, v) for u in graph.vertices() for v in graph.vertices())
    assert worst <= bound


def test_apply_route_rejects_bad_digit():
    graph = GeneralizedDeBruijnGraph(10, 2)
    with pytest.raises(RoutingError):
        graph.apply_route(0, [5])


@given(st.integers(2, 40), st.integers(2, 4), st.data())
@settings(max_examples=200)
def test_random_pairs_route_correct(n, d, data):
    graph = GeneralizedDeBruijnGraph(n, d)
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    digits = graph.route(u, v)
    assert graph.apply_route(u, digits) == v
    assert len(digits) == graph.distance(u, v)


# ----------------------------------------------------------------------
# Coincidence with classical DG(d, k) when n = d^k
# ----------------------------------------------------------------------


def test_matches_debruijn_predicate():
    assert matches_debruijn(8, 2)
    assert matches_debruijn(27, 3)
    assert not matches_debruijn(10, 2)


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2)])
def test_gdb_at_power_sizes_equals_classical_distance(d, k):
    n = d**k
    graph = GeneralizedDeBruijnGraph(n, d)
    for u in range(n):
        for v in range(n):
            classical = directed_distance(int_to_word(u, d, k), int_to_word(v, d, k))
            assert graph.distance(u, v) == classical
