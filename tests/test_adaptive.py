"""Tests for the fully adaptive minimal router."""

from __future__ import annotations

import random

import pytest

from repro.core.distance import undirected_distance
from repro.core.routing import apply_step
from repro.exceptions import RoutingError
from repro.network.router import AdaptiveGreedyRouter, BidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import random_pairs
from tests.conftest import all_words


def test_next_hop_is_always_distance_decreasing():
    router = AdaptiveGreedyRouter(2)
    for x in all_words(2, 4):
        for y in all_words(2, 4):
            if x == y:
                continue
            step = router.next_hop(x, y)
            landing = apply_step(x, step, 2)
            assert undirected_distance(landing, y) == undirected_distance(x, y) - 1


def test_next_hop_at_destination_raises():
    with pytest.raises(RoutingError):
        AdaptiveGreedyRouter(2).next_hop((0, 1), (0, 1))


def test_cost_fn_steers_the_choice():
    router = AdaptiveGreedyRouter(2)
    x, y = (0, 0, 0, 0), (1, 1, 1, 1)
    # Multiple optimal moves exist; penalise each in turn and verify the
    # router avoids the expensive one.
    baseline = router.next_hop(x, y)
    expensive = apply_step(x, baseline, 2)
    steered = router.next_hop(x, y, cost_fn=lambda nbr: 100.0 if nbr == expensive else 1.0)
    assert apply_step(x, steered, 2) != expensive


def test_adaptive_hops_equal_distance_in_simulation():
    d, k = 2, 4
    sim = Simulator(d, k)
    router = AdaptiveGreedyRouter(d)
    x, y = (0, 1, 1, 0), (1, 0, 0, 1)
    message = sim.send(x, y, router)
    sim.run()
    assert message.hop_count == undirected_distance(x, y)


def test_adaptive_full_workload_optimal_and_balanced():
    d, k = 2, 5
    workload = random_pairs(d, k, count=250, spacing=0.3, rng=random.Random(8))
    sim_fixed = Simulator(d, k)
    stats_fixed = run_workload(sim_fixed, BidirectionalOptimalRouter(use_wildcards=False),
                               list(workload))
    sim_adaptive = Simulator(d, k)
    stats_adaptive = run_workload(sim_adaptive, AdaptiveGreedyRouter(d), list(workload))
    assert stats_adaptive.delivered_count == stats_fixed.delivered_count == 250
    # Minimality preserved...
    assert stats_adaptive.mean_hops() == pytest.approx(stats_fixed.mean_hops())
    # ...and the hottest link is never hotter than the canonical path's.
    # (Jain fairness may dip slightly: greedy tie-breaking is deterministic
    # and prefers low digits, which skews the *overall* spread even while
    # it shaves the peak — the metric that bounds queueing.)
    assert stats_adaptive.max_link_load() <= stats_fixed.max_link_load()


def test_adaptive_avoids_congested_first_link():
    d, k = 2, 4
    sim = Simulator(d, k)
    router = AdaptiveGreedyRouter(d)
    # Pre-load one outgoing link of the source so its cost is high.
    x, y = (0, 0, 0, 0), (1, 1, 1, 1)
    busy_neighbor = apply_step(x, router.next_hop(x, y), d)
    link = sim.link(x, busy_neighbor)
    link.next_free = 50.0  # artificially congested
    message = sim.send(x, y, router, at=0.0)
    sim.run()
    assert message.trace[1] != busy_neighbor  # detoured around the backlog
    assert message.hop_count == undirected_distance(x, y)  # still minimal
