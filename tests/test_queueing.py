"""Tests for the analytic queueing model, including against the simulator."""

from __future__ import annotations

import random

import pytest

from repro.analysis.exact import undirected_average_distance
from repro.analysis.queueing import (
    LatencyPrediction,
    md1_wait,
    predict_uniform_latency,
    saturation_rate,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.debruijn import undirected_graph
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import uniform_random


def test_md1_wait_values():
    assert md1_wait(0.0) == 0.0
    assert md1_wait(0.5) == pytest.approx(0.5)
    assert md1_wait(0.9) == pytest.approx(4.5)


def test_md1_wait_rejects_saturation():
    with pytest.raises(InvalidParameterError):
        md1_wait(1.0)
    with pytest.raises(InvalidParameterError):
        md1_wait(-0.1)


def test_prediction_structure():
    pred = predict_uniform_latency(64, 252, 0.05, 3.4)
    assert isinstance(pred, LatencyPrediction)
    assert pred.latency >= pred.mean_distance  # waiting only adds
    assert 0 < pred.link_utilisation < 1


def test_prediction_monotone_in_rate():
    latencies = [predict_uniform_latency(64, 252, rate, 3.4).latency
                 for rate in (0.01, 0.05, 0.2, 0.5)]
    assert latencies == sorted(latencies)


def test_prediction_raises_at_saturation():
    rate = saturation_rate(64, 252, 3.4)
    with pytest.raises(InvalidParameterError):
        predict_uniform_latency(64, 252, rate * 1.01, 3.4)
    predict_uniform_latency(64, 252, rate * 0.99, 3.4)  # just below is fine


def test_guards():
    with pytest.raises(InvalidParameterError):
        predict_uniform_latency(0, 10, 0.1, 2.0)
    with pytest.raises(InvalidParameterError):
        saturation_rate(10, 0, 2.0)


def test_prediction_tracks_simulator_below_saturation():
    d, k = 2, 5
    graph = undirected_graph(d, k)
    n_links = 2 * graph.size()  # each undirected edge = two directed links
    delta = undirected_average_distance(d, k)
    rate = 0.08
    prediction = predict_uniform_latency(graph.order, n_links, rate, delta)
    sim = Simulator(d, k)
    workload = list(uniform_random(d, k, cycles=300, injection_rate=rate,
                                   rng=random.Random(17)))
    stats = run_workload(sim, BidirectionalOptimalRouter(), workload)
    measured = stats.mean_latency()
    # The crude model should land within 35% of the simulator here.
    assert measured == pytest.approx(prediction.latency, rel=0.35)
