"""Tests for the ``debruijn-routing`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_distance_command(capsys):
    assert main(["distance", "-d", "2", "0110", "1110"]) == 0
    out = capsys.readouterr().out
    assert "directed: 4" in out
    assert "undirected: 2" in out


def test_distance_command_rejects_length_mismatch(capsys):
    assert main(["distance", "-d", "2", "01", "111"]) == 2
    assert "equal length" in capsys.readouterr().err


def test_route_command_undirected(capsys):
    assert main(["route", "-d", "2", "0110", "1110"]) == 0
    out = capsys.readouterr().out
    assert "path (2 hops):" in out
    assert out.strip().endswith("1110")


def test_route_command_directed(capsys):
    assert main(["route", "-d", "2", "--directed", "0110", "1110"]) == 0
    out = capsys.readouterr().out
    assert "path (4 hops):" in out
    assert "R" not in out.split("trace:")[0].replace("routing", "")  # left shifts only


def test_route_command_no_wildcards(capsys):
    assert main(["route", "-d", "2", "--no-wildcards", "0110", "1110"]) == 0
    assert "*" not in capsys.readouterr().out


def test_route_command_method_selection(capsys):
    assert main(["route", "-d", "2", "--method", "suffix_tree", "0110", "1110"]) == 0
    assert "path (2 hops):" in capsys.readouterr().out


def test_route_same_vertex(capsys):
    assert main(["route", "-d", "2", "011", "011"]) == 0
    assert "(empty)" in capsys.readouterr().out


def test_average_distance_command(capsys):
    assert main(["average-distance", "-d", "2", "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "eq(5)" in out
    assert "2.1250" in out  # δ(2,3)
    assert "1.8438" in out  # exact directed mean


def test_average_distance_skips_large_graphs(capsys):
    assert main(["average-distance", "-d", "2", "-k", "4", "--max-pairs", "20"]) == 0
    assert "nan" in capsys.readouterr().out


def test_structure_command(capsys):
    assert main(["structure", "-d", "2", "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "order: 8" in out
    assert "diameter: 3" in out


def test_structure_command_directed(capsys):
    assert main(["structure", "-d", "2", "-k", "3", "--directed"]) == 0
    assert "simple_edges: 14" in capsys.readouterr().out


def test_simulate_command(capsys):
    assert main(["simulate", "-d", "2", "-k", "3", "--cycles", "20", "--rate", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "delivered:" in out
    assert "mean_hops:" in out


def test_simulate_trivial_router(capsys):
    assert main(["simulate", "-d", "2", "-k", "3", "--router", "trivial",
                 "--cycles", "10", "--rate", "0.2"]) == 0
    assert "trivial" in capsys.readouterr().out


def test_simulate_unidirectional_router(capsys):
    assert main(["simulate", "-d", "2", "-k", "3", "--router", "optimal-unidirectional",
                 "--cycles", "10", "--rate", "0.2"]) == 0
    assert "optimal-unidirectional" in capsys.readouterr().out


def test_simulate_table_router(capsys):
    assert main(["simulate", "-d", "2", "-k", "4", "--router", "table",
                 "--cycles", "20", "--rate", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "table-driven[bi]" in out
    assert "table_routed" in out


def test_compile_tables_command(tmp_path, capsys):
    output = str(tmp_path / "dg2-5.routes")
    assert main(["compile-tables", "-d", "2", "-k", "5", "--workers", "2",
                 "--verify", "50", "--output", output]) == 0
    out = capsys.readouterr().out
    assert "table bytes: 2048" in out
    assert "mismatches: 0" in out

    from repro.core.tables import CompiledRouteTable, table_path

    assert table_path(output) == (2, 5, False)
    loaded = CompiledRouteTable.load(output)
    try:
        assert loaded.distance((0, 0, 0, 0, 1), (1, 0, 0, 0, 0)) >= 1
    finally:
        loaded.close()


def test_compile_tables_directed(tmp_path, capsys):
    output = str(tmp_path / "dg2-4-uni.routes")
    assert main(["compile-tables", "-d", "2", "-k", "4", "--directed",
                 "--output", output]) == 0
    assert "orientation: directed" in capsys.readouterr().out


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_subcommand_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_sequence_command_fkm(capsys):
    assert main(["sequence", "-d", "2", "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "00010111" in out


def test_sequence_command_euler(capsys):
    assert main(["sequence", "-d", "2", "-k", "3", "--method", "euler"]) == 0
    out = capsys.readouterr().out
    assert "length 8" in out


def test_disjoint_paths_command(capsys):
    assert main(["disjoint-paths", "-d", "2", "001", "110"]) == 0
    out = capsys.readouterr().out
    assert "vertex-disjoint routes" in out
    assert "001" in out and "110" in out


def test_disjoint_paths_rejects_mismatch(capsys):
    assert main(["disjoint-paths", "-d", "2", "001", "11"]) == 2


def test_broadcast_command(capsys):
    assert main(["broadcast", "-d", "2", "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "tree-relay makespan" in out
    assert "speedup" in out


def test_broadcast_command_custom_root(capsys):
    assert main(["broadcast", "-d", "2", "-k", "3", "--root", "010"]) == 0
    assert "010" in capsys.readouterr().out


def test_topology_command(capsys):
    assert main(["topology", "-d", "2", "-k", "4"]) == 0
    out = capsys.readouterr().out
    assert "Kautz" in out and "Moore" in out


def test_congestion_command(capsys):
    assert main(["congestion", "-d", "2", "-k", "4"]) == 0
    out = capsys.readouterr().out
    assert "bit-reversal" in out and "optimal" in out


def test_robustness_command(capsys):
    assert main(["robustness", "-d", "2", "-k", "4", "--fractions", "0,0.2"]) == 0
    out = capsys.readouterr().out
    assert "largest component" in out
    assert "0.2" in out


def test_sort_command(capsys):
    assert main(["sort", "-d", "2", "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "sorted correctly: yes" in out


def test_selfcheck_module(capsys):
    from repro.selfcheck import main as selfcheck_main

    assert selfcheck_main() == 0
    out = capsys.readouterr().out
    assert "all self-checks passed" in out
    assert out.count("[ ok ]") == 5


def test_render_command_svg_stdout(capsys):
    assert main(["render", "-d", "2", "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("<svg")


def test_render_command_dot_with_route(capsys):
    assert main(["render", "-d", "2", "-k", "3", "--format", "dot",
                 "--route", "001", "111"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("graph")
    assert "penwidth=2" in out


def test_render_command_to_file(tmp_path, capsys):
    target = tmp_path / "g.svg"
    assert main(["render", "-d", "2", "-k", "2", "--output", str(target)]) == 0
    assert target.exists()
    assert target.read_text().startswith("<svg")


def test_topology_shootout_flag(capsys):
    assert main(["topology", "-d", "2", "-k", "6", "--shootout"]) == 0
    out = capsys.readouterr().out
    assert "hypercube" in out and "ring" in out and "degree growth" in out


def test_chaos_command_runs_and_asserts_improvement(capsys):
    assert main(["chaos", "-d", "2", "-k", "4", "--seed", "cli-test",
                 "--messages", "80", "--horizon", "800",
                 "--mtbf", "200", "--mttr", "60", "--loss-rate", "0.04",
                 "--intensities", "0,1.0", "--assert-improves"]) == 0
    out = capsys.readouterr().out
    assert "oblivious" in out and "repair" in out
    assert "resilience check passed" in out
    assert "seed 'cli-test' replays this campaign" in out


def test_chaos_command_strategy_subset(capsys):
    assert main(["chaos", "-d", "2", "-k", "4", "--seed", "cli-sub",
                 "--messages", "40", "--horizon", "400",
                 "--intensities", "0.5", "--strategies",
                 "oblivious,detour"]) == 0
    out = capsys.readouterr().out
    assert "detour" in out and "reroute" not in out


def test_chaos_command_with_membership_legs(capsys):
    assert main(["chaos", "-d", "2", "-k", "4", "--seed", "cli-detect",
                 "--messages", "60", "--horizon", "600",
                 "--mtbf", "200", "--mttr", "60",
                 "--intensities", "0,1.0", "--membership"]) == 0
    out = capsys.readouterr().out
    assert "detour-detect" in out and "repair-detect" in out
    assert "mean det latency" in out  # the detection-stats table printed


_DETECT_ARGS = ["detect", "-d", "2", "-k", "3", "--seed", "cli-det",
                "--horizon", "600", "--mtbf", "200", "--mttr", "150",
                "--probe-interval", "5", "--suspicion", "10"]


def test_detect_command(capsys):
    assert main(list(_DETECT_ARGS)) == 0
    out = capsys.readouterr().out
    assert "outages" in out
    assert "detected" in out
    assert "replays this run exactly" in out


def test_detect_command_assert_detects_threshold(capsys):
    assert main(_DETECT_ARGS + ["--assert-detects", "0.5"]) == 0
    capsys.readouterr()
    # An impossible bar trips the check (non-zero exit).
    assert main(_DETECT_ARGS + ["--assert-detects", "1.01"]) == 1


# ----------------------------------------------------------------------
# Route-query service: serve / query subcommands
# ----------------------------------------------------------------------


class _BackgroundServer:
    """A live route-query server on an ephemeral port, for CLI tests."""

    def __init__(self, d=2, k=4, **config_kwargs):
        import asyncio
        import threading

        from repro.service.engine import RouteQueryEngine
        from repro.service.server import RouteQueryServer, ServerConfig

        self._ready = threading.Event()
        self.port = None

        async def _run():
            server = RouteQueryServer(
                RouteQueryEngine(d, k), ServerConfig(**config_kwargs))
            self.port = await server.start()
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._stop.wait()
            await server.stop()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_run()), daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


@pytest.fixture
def live_server():
    server = _BackgroundServer(d=2, k=4)
    yield server
    server.close()


def test_serve_command_runs_for_duration(capsys):
    assert main(["serve", "-d", "2", "-k", "3", "--port", "0",
                 "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "serving DG(2,3)" in out
    assert "server.queue_peak: 0" in out
    assert "server.open_connections: 0" in out


def test_serve_command_writes_stats_json(tmp_path, capsys):
    import json

    target = tmp_path / "stats.json"
    assert main(["serve", "-d", "2", "-k", "3", "--port", "0",
                 "--duration", "0.2", "--stats-json", str(target)]) == 0
    snapshot = json.loads(target.read_text())
    assert "counters" in snapshot and "histograms" in snapshot
    assert "wrote" in capsys.readouterr().out


def test_serve_command_rejects_conflicting_table_flags(capsys):
    assert main(["serve", "-d", "2", "-k", "3", "--table", "x.routes",
                 "--compile-table"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_serve_command_rejects_shards_plus_table(capsys):
    assert main(["serve", "-d", "2", "-k", "3", "--shards",
                 "--compile-table"]) == 2
    assert "--shards replaces the full table" in capsys.readouterr().err


def test_serve_command_shard_tier(tmp_path, capsys):
    import json

    target = tmp_path / "stats.json"
    assert main(["serve", "-d", "2", "-k", "6", "--port", "0",
                 "--shards", "--shard-budget-mb", "4",
                 "--duration", "0.2", "--stats-json", str(target)]) == 0
    out = capsys.readouterr().out
    assert "sharded (" in out and "4 MiB budget" in out
    counters = json.loads(target.read_text())["counters"]
    assert "shards.resident_bytes" in counters
    assert counters["engine.shards_attached"] == 1


def test_query_command_single_pair(live_server, capsys):
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "0110", "1110"]) == 0
    out = capsys.readouterr().out
    assert "distance: 2" in out
    assert "path (2 hops):" in out
    assert out.strip().endswith("1110")


def test_query_command_burst_and_stats_assert(live_server, capsys):
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--burst", "120",
                 "--distance-only", "--assert-min-replies", "120"]) == 0
    out = capsys.readouterr().out
    assert "replies ok: 120" in out
    assert "queries/sec:" in out
    assert "stats check passed" in out


def test_query_command_stats_json(live_server, capsys):
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--stats"]) == 0
    assert '"server.stats_requests"' in capsys.readouterr().out


def test_query_command_stats_json_file(live_server, tmp_path, capsys):
    import json

    target = tmp_path / "snapshot.json"
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--burst", "20",
                 "--stats-json", str(target)]) == 0
    assert f"wrote {target}" in capsys.readouterr().out
    snapshot = json.loads(target.read_text())
    assert "counters" in snapshot
    assert snapshot["counters"]["server.replies"] >= 20


def test_query_command_assert_min_replies_trips(live_server, capsys):
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--burst", "10",
                 "--assert-min-replies", "100000"]) == 1
    assert "SERVICE REGRESSION" in capsys.readouterr().err


def test_query_command_wrong_graph_is_an_error_reply(live_server, capsys):
    assert main(["query", "-d", "2", "-k", "6", "--port",
                 str(live_server.port), "011010", "111000"]) == 1
    assert "UNSUPPORTED" in capsys.readouterr().err


def test_query_command_requires_work(live_server, capsys):
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port)]) == 2
    assert "nothing to do" in capsys.readouterr().err
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "0110"]) == 2
    assert "both SOURCE and DESTINATION" in capsys.readouterr().err


def test_serve_command_multi_worker_fleet(capsys):
    assert main(["serve", "-d", "2", "-k", "4", "--port", "0",
                 "--workers", "2", "--duration", "0.4"]) == 0
    out = capsys.readouterr().out
    assert "2 workers via" in out
    assert "fleet.workers: 2" in out
    assert "fleet.workers_lost: 0" in out


def test_loadgen_command_step_and_assert_complete(live_server, capsys):
    assert main(["loadgen", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--queries", "50",
                 "--step-duration", "0.3", "--assert-complete"]) == 0
    out = capsys.readouterr().out
    assert "closed-loop step" in out
    assert "queries answered" in out


def test_loadgen_command_fleet_consistency_on_fresh_server(
        live_server, tmp_path, capsys):
    import json

    target = tmp_path / "loadgen.json"
    assert main(["loadgen", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--queries", "40",
                 "--step-duration", "0.3", "--assert-fleet-consistent",
                 "--stats-json", str(target)]) == 0
    out = capsys.readouterr().out
    assert "# fleet consistent:" in out
    report = json.loads(target.read_text())
    assert report["step"]["queries"] >= 40
    assert report["stats"]["counters"]["server.queries"] \
        == report["step"]["queries"]


def test_loadgen_command_requires_action(live_server, capsys):
    assert main(["loadgen", "-d", "2", "-k", "4", "--port",
                 str(live_server.port)]) == 2
    assert "nothing to do" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Chaos proxy + hardened-client flags (E24)
# ----------------------------------------------------------------------


def test_chaosproxy_command_runs_for_duration(live_server, tmp_path, capsys):
    import json

    target = tmp_path / "chaos.json"
    assert main(["chaosproxy", "--port", "0",
                 "--upstream-port", str(live_server.port),
                 "--latency-ms", "1", "--duration", "0.2",
                 "--stats-json", str(target)]) == 0
    out = capsys.readouterr().out
    assert "chaos proxy on" in out
    assert "chaos proxy injected faults" in out
    assert f"wrote {target}" in out
    snapshot = json.loads(target.read_text())
    assert "counters" in snapshot


def test_chaosproxy_command_rejects_bad_plan(capsys):
    assert main(["chaosproxy", "--upstream-port", "1",
                 "--reset-rate", "1.5", "--duration", "0.1"]) == 2
    assert "reset_rate" in capsys.readouterr().err


def test_resilience_from_args_defaults_to_off():
    import argparse

    from repro.cli import _resilience_from_args

    ns = argparse.Namespace(
        retries=None, deadline_ms=None, hedge_ms=None,
        attempt_timeout_ms=None, breaker_failures=5,
        breaker_probe_ms=1000.0, seed=0)
    assert _resilience_from_args(ns) == (None, None)

    ns.retries = 3
    policy, breaker = _resilience_from_args(ns)
    assert policy.retries == 3
    assert policy.deadline == 30.0
    assert policy.hedge_after is None
    assert breaker.failure_threshold == 5
    assert breaker.probe_interval == 1.0

    ns.deadline_ms = 5000.0
    ns.attempt_timeout_ms = 500.0
    ns.hedge_ms = 250.0
    policy, _ = _resilience_from_args(ns)
    assert policy.deadline == 5.0
    assert policy.attempt_timeout == 0.5
    assert policy.hedge_after == 0.25


def test_query_command_burst_with_retries(live_server, capsys):
    assert main(["query", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--burst", "50",
                 "--retries", "2", "--distance-only"]) == 0
    out = capsys.readouterr().out
    assert "replies ok: 50" in out
    assert "lost (client deadline): 0" in out
    assert "client.attempts" in out


def test_loadgen_command_with_retries(live_server, tmp_path, capsys):
    import json

    target = tmp_path / "loadgen.json"
    assert main(["loadgen", "-d", "2", "-k", "4", "--port",
                 str(live_server.port), "--queries", "40",
                 "--step-duration", "0.3", "--retries", "2",
                 "--assert-complete", "--stats-json", str(target)]) == 0
    out = capsys.readouterr().out
    assert "hardened-client counters" in out
    report = json.loads(target.read_text())
    assert "client" in report
    assert report["client"]["counters"].get("client.attempts", 0) >= 1


def test_serve_command_read_timeout_and_max_connections(capsys):
    assert main(["serve", "-d", "2", "-k", "3", "--port", "0",
                 "--duration", "0.2", "--read-timeout", "1.0",
                 "--max-connections", "16"]) == 0
    assert "serving DG(2,3)" in capsys.readouterr().out


def test_cluster_drill_command(tmp_path, capsys):
    report_path = tmp_path / "drill.json"
    assert main(["cluster", "drill", "-d", "2", "-k", "5", "--nodes", "3",
                 "--queries", "300", "--window", "32",
                 "--probe-interval", "0.15", "--probe-timeout", "0.08",
                 "--suspicion-timeout", "0.4", "--repair-delay", "0.2",
                 "--workdir", str(tmp_path),
                 "--json", str(report_path), "--assert-complete"]) == 0
    out = capsys.readouterr().out
    assert "0 lost" in out
    assert "byte-identical" in out
    report = json.loads(report_path.read_text())
    assert report["fault_burst"]["lost"] == 0
    assert set(report["detection_s"]) == {"0", "1"}


def test_cluster_up_command_with_scripted_kill(tmp_path, capsys):
    assert main(["cluster", "up", "-d", "2", "-k", "5", "--nodes", "3",
                 "--probe-interval", "0.15", "--probe-timeout", "0.08",
                 "--suspicion-timeout", "0.4", "--workdir", str(tmp_path),
                 "--kill", "1", "--kill-after", "0.5",
                 "--duration", "3.0", "--status-interval", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "cluster up: 3 node processes" in out
    assert "kill node 1" in out
    assert "1:DOWN" in out
    # The survivors' final status lines show the verdict bit for node 1.
    assert "mask=2" in out
    assert "cluster stopped" in out
