"""Tests for Kautz graphs K(d, k) and the Property-1 transfer."""

from __future__ import annotations

from collections import deque

import pytest

from repro.exceptions import InvalidParameterError, InvalidWordError, RoutingError
from repro.graphs.kautz import KautzGraph, validate_kautz_word

CASES = [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]


def _bfs(graph: KautzGraph, source):
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


# ----------------------------------------------------------------------
# Word validation and structure
# ----------------------------------------------------------------------


def test_validate_accepts_kautz_words():
    assert validate_kautz_word((0, 1, 0), 2, 3) == (0, 1, 0)
    assert validate_kautz_word((2, 0, 2), 2, 3) == (2, 0, 2)


@pytest.mark.parametrize("word", [(0, 0, 1), (0, 1, 1), (0, 1), (0, 1, 3)])
def test_validate_rejects_bad_words(word):
    with pytest.raises(InvalidWordError):
        validate_kautz_word(word, 2, 3)


def test_invalid_parameters():
    with pytest.raises(InvalidParameterError):
        KautzGraph(1, 3)
    with pytest.raises(InvalidParameterError):
        KautzGraph(2, 0)


@pytest.mark.parametrize("d,k", CASES)
def test_order_formula(d, k):
    graph = KautzGraph(d, k)
    vertices = list(graph.vertices())
    assert len(vertices) == d**k + d ** (k - 1) == graph.order
    assert len(set(vertices)) == graph.order
    for word in vertices:
        validate_kautz_word(word, d, k)


@pytest.mark.parametrize("d,k", CASES)
def test_degrees_are_exactly_d(d, k):
    graph = KautzGraph(d, k)
    for word in graph.vertices():
        assert len(graph.out_neighbors(word)) == d
        assert len(graph.in_neighbors(word)) == d


def test_no_self_loops():
    graph = KautzGraph(2, 3)
    for u, v in graph.edges():
        assert u != v


def test_in_out_consistency():
    graph = KautzGraph(2, 3)
    for u in graph.vertices():
        for v in graph.out_neighbors(u):
            assert u in graph.in_neighbors(v)


# ----------------------------------------------------------------------
# Property 1 transfers: distance and routing vs BFS
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", CASES)
def test_distance_formula_matches_bfs_all_pairs(d, k):
    graph = KautzGraph(d, k)
    vertices = list(graph.vertices())
    for x in vertices:
        oracle = _bfs(graph, x)
        for y in vertices:
            assert graph.distance(x, y) == oracle[y], (x, y)


@pytest.mark.parametrize("d,k", CASES)
def test_route_is_optimal_and_valid(d, k):
    graph = KautzGraph(d, k)
    vertices = list(graph.vertices())
    for x in vertices:
        for y in vertices:
            digits = graph.route(x, y)
            assert len(digits) == graph.distance(x, y)
            assert graph.apply_route(x, digits) == y


@pytest.mark.parametrize("d,k", CASES)
def test_diameter_is_k(d, k):
    graph = KautzGraph(d, k)
    vertices = list(graph.vertices())
    worst = 0
    for x in vertices:
        oracle = _bfs(graph, x)
        assert len(oracle) == graph.order  # strongly connected
        worst = max(worst, max(oracle.values()))
    assert worst == k


def test_kautz_beats_debruijn_at_same_degree_diameter():
    # The reason Kautz matters: more vertices for the same (degree, diameter).
    for d, k in CASES:
        assert KautzGraph(d, k).order > d**k


def test_apply_route_rejects_repeat():
    graph = KautzGraph(2, 3)
    with pytest.raises(RoutingError):
        graph.apply_route((0, 1, 2), [2])


def test_distance_zero_iff_equal():
    graph = KautzGraph(2, 3)
    assert graph.distance((0, 1, 0), (0, 1, 0)) == 0
    assert graph.distance((0, 1, 0), (0, 1, 2)) > 0


# ----------------------------------------------------------------------
# Kautz sequences
# ----------------------------------------------------------------------


def test_kautz_sequence_k1():
    from repro.graphs.kautz import is_kautz_sequence, kautz_sequence

    assert kautz_sequence(2, 1) == (0, 1, 2)
    assert is_kautz_sequence((0, 1, 2), 2, 1)


@pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3)])
def test_kautz_sequences_are_valid(d, k):
    from repro.graphs.kautz import is_kautz_sequence, kautz_sequence

    seq = kautz_sequence(d, k)
    assert len(seq) == d**k + d ** (k - 1)
    assert is_kautz_sequence(seq, d, k)
    # No two adjacent symbols equal, cyclically.
    for a, b in zip(seq, seq[1:] + seq[:1]):
        assert a != b


def test_is_kautz_sequence_rejects_bad_inputs():
    from repro.graphs.kautz import is_kautz_sequence

    assert not is_kautz_sequence((0, 1, 2), 2, 2)  # wrong length
    assert not is_kautz_sequence((0, 0, 1, 2, 1, 2), 2, 2)  # repeat adjacency
