"""Tests for the Koorde DHT and the Chord baseline."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord import ChordRing
from repro.dht.koorde import KoordeRing, _in_half_open
from repro.exceptions import InvalidParameterError

RING_CASES = st.integers(3, 8).flatmap(
    lambda bits: st.tuples(
        st.just(bits),
        st.sets(st.integers(0, (1 << bits) - 1), min_size=1, max_size=min(40, 1 << bits)),
    )
)


# ----------------------------------------------------------------------
# Circular interval arithmetic
# ----------------------------------------------------------------------


def test_half_open_interval_plain_and_wrapping():
    assert _in_half_open(5, 3, 7, 16)
    assert _in_half_open(7, 3, 7, 16)
    assert not _in_half_open(3, 3, 7, 16)
    # Wrapping interval (14, 2]:
    assert _in_half_open(15, 14, 2, 16)
    assert _in_half_open(1, 14, 2, 16)
    assert not _in_half_open(7, 14, 2, 16)


def test_half_open_degenerate_full_ring():
    assert _in_half_open(9, 4, 4, 16)


# ----------------------------------------------------------------------
# Ring geometry
# ----------------------------------------------------------------------


def test_successor_predecessor_owner():
    ring = KoordeRing(4, [1, 5, 9, 13])
    assert ring.successor(5) == 5
    assert ring.successor(6) == 9
    assert ring.successor(14) == 1  # wraps
    assert ring.predecessor(5) == 1
    assert ring.predecessor(1) == 13
    assert ring.owner(15) == 1
    assert ring.next_node(13) == 1


def test_debruijn_finger_is_predecessor_of_double():
    ring = KoordeRing(4, [1, 5, 9, 13])
    for node in ring.nodes:
        assert ring.debruijn_finger(node) == ring.predecessor((2 * node) % 16)


def test_invalid_rings_rejected():
    with pytest.raises(InvalidParameterError):
        KoordeRing(0, [0])
    with pytest.raises(InvalidParameterError):
        KoordeRing(3, [])
    with pytest.raises(InvalidParameterError):
        KoordeRing(3, [9])
    with pytest.raises(InvalidParameterError):
        ChordRing(3, [9])


# ----------------------------------------------------------------------
# Koorde lookup correctness
# ----------------------------------------------------------------------


@given(RING_CASES, st.data())
@settings(max_examples=300, deadline=None)
def test_koorde_lookup_finds_the_owner(case, data):
    bits, nodes = case
    ring = KoordeRing(bits, nodes)
    start = data.draw(st.sampled_from(ring.nodes))
    key = data.draw(st.integers(0, ring.modulus - 1))
    for optimized in (False, True):
        result = ring.lookup(start, key, optimized_start=optimized)
        assert result.owner == ring.owner(key)
        assert result.path[0] == start
        assert result.path[-1] == result.owner
        assert result.hops == len(result.path) - 1
        assert result.debruijn_hops + result.successor_hops == result.hops


@given(RING_CASES, st.data())
@settings(max_examples=200, deadline=None)
def test_koorde_hop_structure(case, data):
    # Koorde takes at most `bits` de Bruijn hops (one per key bit), plus
    # successor detours; the O(log N) expectation for *random* rings is
    # asserted statistically in benchmarks/bench_dht.py, while here we pin
    # the structural bounds that hold for every (even adversarial) ring.
    bits, nodes = case
    ring = KoordeRing(bits, nodes)
    start = data.draw(st.sampled_from(ring.nodes))
    key = data.draw(st.integers(0, ring.modulus - 1))
    result = ring.lookup(start, key, optimized_start=True)
    assert result.debruijn_hops <= bits
    assert result.hops <= bits * (len(ring.nodes) + 2) + 4


def test_koorde_every_pair_small_ring():
    ring = KoordeRing(5, [0, 3, 7, 11, 18, 25, 29])
    for start in ring.nodes:
        for key in range(32):
            result = ring.lookup(start, key)
            assert result.owner == ring.owner(key), (start, key)


def test_koorde_full_population_hop_structure():
    bits = 4
    ring = KoordeRing(bits, range(1 << bits))
    result = ring.lookup(3, 11, optimized_start=False)
    assert result.owner == 11
    # With every identifier populated: exactly <= bits de Bruijn hops, and
    # each needs at most two successor corrections (the finger is
    # predecessor(2m) = 2m - 1; the new imaginary is 2m or 2m + 1).
    assert result.debruijn_hops <= bits
    assert result.successor_hops <= 2 * bits + 1


def test_koorde_lookup_requires_member_start():
    ring = KoordeRing(4, [1, 5])
    with pytest.raises(InvalidParameterError):
        ring.lookup(2, 7)


def test_koorde_statistics_shape(rng):
    ring = KoordeRing(8, rng.sample(range(256), 40))
    pairs = [(rng.choice(ring.nodes), rng.randrange(256)) for _ in range(100)]
    mean_hops, max_hops, mean_db, mean_succ = ring.lookup_statistics(pairs)
    assert 0 < mean_hops <= max_hops
    assert mean_db + mean_succ == pytest.approx(mean_hops)


# ----------------------------------------------------------------------
# Chord baseline
# ----------------------------------------------------------------------


@given(RING_CASES, st.data())
@settings(max_examples=300, deadline=None)
def test_chord_lookup_finds_the_owner(case, data):
    bits, nodes = case
    ring = ChordRing(bits, nodes)
    start = data.draw(st.sampled_from(ring.nodes))
    key = data.draw(st.integers(0, ring.modulus - 1))
    result = ring.lookup(start, key)
    assert result.owner == ring.owner(key)
    assert result.path[0] == start


@given(RING_CASES, st.data())
@settings(max_examples=200, deadline=None)
def test_chord_hop_bound_logarithmic(case, data):
    bits, nodes = case
    ring = ChordRing(bits, nodes)
    start = data.draw(st.sampled_from(ring.nodes))
    key = data.draw(st.integers(0, ring.modulus - 1))
    assert ring.lookup(start, key).hops <= bits + 1


def test_state_size_contrast():
    bits = 10
    nodes = random.Random(3).sample(range(1 << bits), 50)
    koorde = KoordeRing(bits, nodes)
    chord = ChordRing(bits, nodes)
    assert koorde.state_size() == 2  # constant degree
    assert chord.state_size() == bits  # logarithmic degree


def test_koorde_and_chord_agree_on_ownership(rng):
    bits = 7
    nodes = rng.sample(range(128), 20)
    koorde = KoordeRing(bits, nodes)
    chord = ChordRing(bits, nodes)
    for _ in range(200):
        key = rng.randrange(128)
        assert koorde.owner(key) == chord.owner(key)


# ----------------------------------------------------------------------
# Membership changes
# ----------------------------------------------------------------------


def test_join_takes_over_its_key_range():
    ring = KoordeRing(6, [10, 30, 50])
    assert ring.owner(20) == 30
    grown = ring.with_node(22)
    assert grown.owner(20) == 22  # the joiner now owns (10, 22]
    assert grown.owner(25) == 30  # the rest of the old range stays put
    # Lookups from every node still resolve correctly.
    for start in grown.nodes:
        for key in range(64):
            assert grown.lookup(start, key).owner == grown.owner(key)


def test_leave_hands_keys_to_successor():
    ring = KoordeRing(6, [10, 30, 50])
    shrunk = ring.without_node(30)
    assert shrunk.owner(20) == 50  # 30's old range falls to its successor
    for start in shrunk.nodes:
        for key in range(64):
            assert shrunk.lookup(start, key).owner == shrunk.owner(key)


def test_cannot_empty_the_ring():
    from repro.exceptions import InvalidParameterError as IPE

    ring = KoordeRing(4, [5])
    with pytest.raises(IPE):
        ring.without_node(5)


def test_join_leave_roundtrip_restores_pointers():
    ring = KoordeRing(6, [3, 19, 44, 60])
    roundtrip = ring.with_node(33).without_node(33)
    assert roundtrip.nodes == ring.nodes
    assert [roundtrip.debruijn_finger(n) for n in roundtrip.nodes] == \
        [ring.debruijn_finger(n) for n in ring.nodes]
