"""Tests for the multi-core supervisor: fleet STATS, drain, respawn."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.service.client import fetch_stats, query_once, run_burst
from repro.service.engine import EngineSpec, RouteQueryEngine, build_engine
from repro.service.supervisor import (
    LISTENER_MODES,
    ServiceSupervisor,
    SupervisorConfig,
    SupervisorThread,
    resolve_listener,
    reuseport_supported,
)
from tests.test_service import _pairs

SPEC = EngineSpec(2, 6, compile_table=True)


@pytest.fixture(scope="module")
def fleet():
    """One two-worker fleet shared by the read-only tests in this module."""
    with SupervisorThread(SPEC, SupervisorConfig(workers=2)) as live:
        yield live


# ----------------------------------------------------------------------
# Spec / config plumbing
# ----------------------------------------------------------------------


def test_engine_spec_builds_each_tier(tmp_path):
    from repro.core.tables import CompiledRouteTable

    planner = EngineSpec(2, 5).build()
    assert planner.table is None and planner.shards is None

    compiled = EngineSpec(2, 5, compile_table=True).build()
    assert compiled.table is not None

    path = str(tmp_path / "t.routes")
    CompiledRouteTable.compile(2, 5).save(path)
    loaded = build_engine(EngineSpec(2, 5, table_path=path))
    assert loaded.table is not None
    assert isinstance(loaded, RouteQueryEngine)

    sharded = EngineSpec(2, 5, shards=True,
                         shard_dir=str(tmp_path / "shards")).build()
    assert sharded.shards is not None
    sharded.shards.close()

    with pytest.raises(ServiceError):
        EngineSpec(2, 9, table_path=path).build()  # wrong k on disk


def test_supervisor_rejects_bad_config():
    with pytest.raises(ServiceError):
        ServiceSupervisor(SPEC, SupervisorConfig(workers=0))
    with pytest.raises(ServiceError):
        ServiceSupervisor()  # neither spec nor factory
    with pytest.raises(ServiceError):
        ServiceSupervisor(SPEC, engine_factory=lambda: None)  # both


def test_resolve_listener_modes():
    assert resolve_listener("reuseport", "127.0.0.1") == "reuseport"
    assert resolve_listener("shared", "127.0.0.1") == "shared"
    assert resolve_listener("auto", "127.0.0.1") in LISTENER_MODES
    with pytest.raises(ServiceError):
        resolve_listener("thundering", "127.0.0.1")
    assert reuseport_supported() in (True, False)


# ----------------------------------------------------------------------
# Fleet end-to-end: aggregation over STATS
# ----------------------------------------------------------------------


def test_fleet_answers_burst_and_aggregates_exactly(fleet):
    before = fleet.aggregate()["counters"].get("server.queries", 0)
    pairs = _pairs(2, 6, 600, seed=11)
    outcome = run_burst("127.0.0.1", fleet.port, pairs, 2, pool_size=4)
    assert outcome.ok_count == len(pairs)

    # A STATS frame through any worker reports the whole fleet.
    snapshot = fetch_stats("127.0.0.1", fleet.port)
    fleet_info = snapshot["fleet"]
    assert fleet_info["workers"] == 2
    per_worker = fleet_info["per_worker"]
    assert len(per_worker) == 2
    answered = snapshot["counters"]["server.queries"] - before
    assert answered == len(pairs)
    assert sum(row["queries"] for row in per_worker) == \
        snapshot["counters"]["server.queries"]


def test_fleet_merged_p99_is_monotone_in_worker_p99(fleet):
    pairs = _pairs(2, 6, 400, seed=23)
    run_burst("127.0.0.1", fleet.port, pairs, 2, pool_size=4)
    snapshot = fetch_stats("127.0.0.1", fleet.port)
    merged = snapshot["histograms"]["server.latency_seconds"]
    worker_p99s = [row["p99_ms"] / 1e3
                   for row in snapshot["fleet"]["per_worker"]
                   if row["queries"] > 0]
    assert worker_p99s, "no worker saw traffic"
    # The union q-quantile lies between the smallest and largest
    # per-worker q-quantile; bucket interpolation can shift each
    # estimate within its bucket, so allow one bucket ratio of slack.
    ratio = 1.75
    assert merged["p99"] <= max(worker_p99s) * ratio + 1e-9
    assert merged["p99"] >= min(worker_p99s) / ratio - 1e-9


def test_fleet_aggregate_carries_generations(fleet):
    snapshot = fleet.aggregate()
    rows = snapshot["fleet"]["per_worker"]
    assert sorted(row["index"] for row in rows) == [0, 1]
    assert all(row["pid"] > 0 for row in rows)
    assert snapshot["counters"]["fleet.workers"] == 2


# ----------------------------------------------------------------------
# Listener fallback
# ----------------------------------------------------------------------


def test_fleet_shared_listener_fallback_serves():
    config = SupervisorConfig(workers=2, listener="shared")
    with SupervisorThread(SPEC, config) as live:
        assert live.supervisor.listener_mode == "shared"
        pairs = _pairs(2, 6, 300, seed=5)
        outcome = run_burst("127.0.0.1", live.port, pairs, 2, pool_size=4)
        assert outcome.ok_count == len(pairs)
        snapshot = fetch_stats("127.0.0.1", live.port)
        assert snapshot["counters"]["server.queries"] >= len(pairs)
        assert snapshot["fleet"]["listener"] == "shared"


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


def test_fleet_drain_completes_and_refuses_new_connects():
    live = SupervisorThread(SPEC, SupervisorConfig(workers=2))
    port = live.port
    pairs = _pairs(2, 6, 200, seed=9)
    outcome = run_burst("127.0.0.1", port, pairs, 2, pool_size=2)
    assert outcome.ok_count == len(pairs)

    started = time.monotonic()
    live.close()
    drain_seconds = time.monotonic() - started
    assert drain_seconds < 30.0, f"drain took {drain_seconds:.1f}s"

    # Every listener is gone: nothing accepts on the old port.
    with pytest.raises((ServiceError, OSError)):
        query_once("127.0.0.1", port, (0, 1, 1, 0, 1, 0),
                   (1, 1, 0, 1, 1, 0), 2)


def test_fleet_sigterm_worker_drains_in_flight():
    """SIGTERM mid-burst: accepted queries are answered, none vanish."""
    with SupervisorThread(SPEC, SupervisorConfig(workers=2)) as live:
        pairs = _pairs(2, 6, 3000, seed=31)
        result = {}

        def _burst():
            result["outcome"] = run_burst(
                "127.0.0.1", live.port, pairs, 2, pool_size=4,
                window=64, reconnect=8)

        worker = threading.Thread(target=_burst)
        worker.start()
        time.sleep(0.02)
        victim = live.worker_pids()[0]
        os.kill(victim, signal.SIGTERM)
        worker.join(timeout=60)
        assert not worker.is_alive()
        outcome = result["outcome"]
        # Every query got an answer; drain may fail a few with
        # SHUTTING_DOWN, which the client surfaces as explicit errors.
        assert len(outcome.replies) == len(pairs)
        assert outcome.ok_count + outcome.error_counts.get(
            "SHUTTING_DOWN", 0) == len(pairs)


# ----------------------------------------------------------------------
# Crash respawn
# ----------------------------------------------------------------------


def test_fleet_kill9_mid_burst_respawns_and_burst_completes():
    with SupervisorThread(SPEC, SupervisorConfig(workers=2)) as live:
        pairs = _pairs(2, 6, 3000, seed=47)
        result = {}

        def _burst():
            result["outcome"] = run_burst(
                "127.0.0.1", live.port, pairs, 2, pool_size=4,
                window=64, reconnect=8)

        worker = threading.Thread(target=_burst)
        worker.start()
        time.sleep(0.02)
        victim = live.worker_pids()[0]
        live.kill_worker(victim)  # SIGKILL: no drain, replies are lost
        worker.join(timeout=60)
        assert not worker.is_alive()
        outcome = result["outcome"]
        assert outcome.ok_count == len(pairs)  # reconnect re-asked the lost

        assert live.wait_for_workers(2, timeout=30)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            snapshot = live.aggregate()
            rows = snapshot["fleet"]["per_worker"]
            if len(rows) == 2 and any(row["generation"] > 0 for row in rows):
                break
            time.sleep(0.1)
        assert live.supervisor.restarts_used >= 1
        assert any(row["generation"] > 0 for row in rows)
        assert victim not in live.worker_pids()

        # The respawned fleet still answers.
        tail = run_burst("127.0.0.1", live.port, _pairs(2, 6, 100, seed=53),
                         2, pool_size=2, reconnect=4)
        assert tail.ok_count == 100


def test_fleet_restart_budget_exhausts():
    config = SupervisorConfig(workers=1, max_restarts=0)
    with SupervisorThread(SPEC, config) as live:
        victim = live.worker_pids()[0]
        live.kill_worker(victim)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if live.supervisor.workers_lost >= 1:
                break
            time.sleep(0.05)
        assert live.supervisor.workers_lost == 1
        assert live.supervisor.restarts_used == 0
        assert live.worker_pids() == []


def test_fleet_sigstop_worker_is_detected_hung_and_recycled():
    """Satellite (E24): a worker frozen with SIGSTOP never crashes, so
    only the heartbeat can catch it — the supervisor must declare it
    hung, SIGKILL it, and respawn through the shared restart budget."""
    config = SupervisorConfig(workers=2, max_restarts=3,
                              heartbeat_interval=0.2,
                              heartbeat_timeout=1.0)
    with SupervisorThread(SPEC, config) as live:
        victim = live.worker_pids()[0]
        os.kill(victim, signal.SIGSTOP)
        try:
            # Detection bound: one timeout, a few beats of slack, and
            # the respawn itself.
            deadline = time.monotonic() + 1.0 + 5 * 0.2 + 8.0
            recycled = False
            while time.monotonic() < deadline:
                snapshot = live.aggregate()
                fleet_stats = snapshot["fleet"]
                pids = live.worker_pids()
                if (fleet_stats["hung_recycles"] >= 1
                        and len(pids) == 2 and victim not in pids):
                    recycled = True
                    break
                time.sleep(0.1)
        finally:
            # If detection failed, unfreeze so teardown can drain.
            try:
                os.kill(victim, signal.SIGCONT)
            except ProcessLookupError:
                pass
        assert recycled
        assert live.supervisor.hung_recycles >= 1
        # Hung recycles draw from the same budget as crash respawns.
        assert live.supervisor.restarts_used >= 1
        assert live.supervisor.restarts_used <= config.max_restarts

        # The recycled fleet still answers.
        outcome = run_burst("127.0.0.1", live.port,
                            _pairs(2, 6, 100, seed=61), 2,
                            pool_size=2, reconnect=4)
        assert outcome.ok_count == 100


def test_second_sigterm_escalates_to_sigkill_of_stragglers():
    """Satellite (E25): a graceful drain waits out ``drain_timeout`` for
    a wedged worker; ``escalate()`` — the second-SIGTERM path — must cut
    that short by hard-killing the stragglers immediately."""
    config = SupervisorConfig(workers=2, heartbeat_interval=0.0,
                              drain_timeout=30.0)
    live = SupervisorThread(SPEC, config)
    frozen = list(live.worker_pids())
    assert len(frozen) == 2
    for pid in frozen:
        os.kill(pid, signal.SIGSTOP)  # SIGTERM alone can't drain these
    try:
        started = time.monotonic()
        closer = threading.Thread(target=live.close)
        closer.start()
        time.sleep(0.5)  # first "SIGTERM" (graceful stop) is in flight
        live.escalate()  # the second one: kill the stragglers *now*
        closer.join(timeout=20.0)
        elapsed = time.monotonic() - started
        assert not closer.is_alive(), "drain never finished"
        # Far below the 30s drain window (+5s slack) the graceful path
        # would have waited out: the escalation did the cutting.
        assert elapsed < 20.0, f"drain took {elapsed:.1f}s despite escalate"
        assert live.supervisor.escalations >= 1
        assert live.worker_pids() == []
    finally:
        for pid in frozen:
            try:
                os.kill(pid, signal.SIGCONT)
            except (ProcessLookupError, OSError):
                pass
