"""Tests for the interconnect-family comparison."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import (
    TopologyProfile,
    debruijn_profile,
    hypercube_profile,
    kautz_profile,
    ring_profile,
    shootout,
    torus_profile,
)
from repro.exceptions import InvalidParameterError


def test_ring_profile_small_cases():
    profile = ring_profile(8)
    assert profile.degree == 2
    assert profile.diameter == 4
    # Distances from any vertex of C8: 0,1,1,2,2,3,3,4 -> mean 2.
    assert profile.mean_distance == pytest.approx(2.0)


def test_torus_profile():
    profile = torus_profile(4)
    assert profile.vertices == 16
    assert profile.degree == 4
    assert profile.diameter == 4
    # Per-axis mean on C4 is (0+1+2+1)/4 = 1.0; two axes -> 2.0.
    assert profile.mean_distance == pytest.approx(2.0)


def test_hypercube_profile():
    profile = hypercube_profile(6)
    assert profile.vertices == 64
    assert profile.degree == 6 and profile.diameter == 6
    assert profile.mean_distance == pytest.approx(3.0)
    assert profile.degree_growth == "O(log N)"


def test_debruijn_profile_uses_exact_mean_when_possible():
    from repro.analysis.exact import undirected_average_distance

    profile = debruijn_profile(2, 5)
    assert profile.vertices == 32
    assert profile.degree == 4 and profile.diameter == 5
    assert profile.mean_distance == pytest.approx(undirected_average_distance(2, 5))


def test_kautz_profile_sampled_mean_below_diameter():
    profile = kautz_profile(2, 4)
    assert profile.vertices == 24
    assert 0 < profile.mean_distance <= profile.diameter


def test_shootout_shapes_the_argument():
    profiles = shootout(64)
    by_family = {p.family.split(" ")[0]: p for p in profiles}
    ring = by_family["ring"]
    torus = by_family["2D"]
    hypercube = by_family["hypercube"]
    debruijn = by_family["de"]
    # Fixed-degree families with polynomial diameter...
    assert ring.diameter > hypercube.diameter
    assert torus.diameter > hypercube.diameter
    # ...the hypercube pays growing degree for its log diameter...
    assert hypercube.degree_growth == "O(log N)"
    # ...and de Bruijn gets the log diameter at fixed degree.
    assert debruijn.degree_growth == "O(1)"
    assert debruijn.diameter == hypercube.diameter
    assert debruijn.degree == 4 < hypercube.degree + 1


def test_guards():
    with pytest.raises(InvalidParameterError):
        ring_profile(2)
    with pytest.raises(InvalidParameterError):
        torus_profile(1)
    with pytest.raises(InvalidParameterError):
        hypercube_profile(0)
    with pytest.raises(InvalidParameterError):
        shootout(4)


def test_profile_dataclass_frozen():
    profile = ring_profile(8)
    with pytest.raises(AttributeError):
        profile.degree = 9  # type: ignore[misc]
