"""Run every inline ``>>>`` example in the library as a doctest.

The docstrings are part of the public contract; this keeps their examples
executable forever.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

from repro.inventory import iter_module_names

MODULES = iter_module_names()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failure(s)"


def test_some_modules_actually_have_doctests():
    total_attempted = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        total_attempted += results.attempted
    assert total_attempted >= 10  # the examples exist and ran
