"""Tests for one-to-all broadcast on DN(d, k)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.graphs.debruijn import undirected_graph
from repro.network.broadcast import (
    broadcast_lower_bound,
    broadcast_tree,
    simulate_tree_broadcast,
    simulate_unicast_broadcast,
    tree_depth,
)
from repro.network.router import BidirectionalOptimalRouter


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2)])
def test_broadcast_tree_spans_and_uses_edges(d, k):
    graph = undirected_graph(d, k)
    root = (0,) * k
    tree = broadcast_tree(graph, root)
    assert set(tree) == set(graph.vertices())
    children = [c for kids in tree.values() for c in kids]
    assert len(children) == graph.order - 1  # every non-root has one parent
    assert len(set(children)) == graph.order - 1
    for parent, kids in tree.items():
        for child in kids:
            assert graph.has_edge(parent, child)


def test_tree_depth_is_root_eccentricity():
    graph = undirected_graph(2, 4)
    root = (0, 1, 0, 1)
    tree = broadcast_tree(graph, root)
    assert tree_depth(tree, root) == broadcast_lower_bound(2, 4, root)


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (2, 5), (3, 3)])
def test_tree_broadcast_reaches_everyone(d, k):
    stats, makespan = simulate_tree_broadcast(d, k, (0,) * k)
    assert stats.delivered_count == d**k - 1
    assert stats.dropped_count == 0
    assert makespan >= broadcast_lower_bound(d, k, (0,) * k)


def test_tree_broadcast_makespan_is_logarithmic_not_linear():
    d, k = 2, 6  # 64 sites
    _, makespan = simulate_tree_broadcast(d, k)
    # Depth <= k and each site serialises <= 2d child sends: the makespan
    # is O(d·k), far below the ~N/(2d) a unicast storm pays at the root.
    assert makespan <= 2 * d * k
    n = d**k
    assert makespan < n / (2 * d)


def test_unicast_broadcast_bottlenecks_at_root():
    d, k = 2, 5
    root = (0,) * k
    stats, makespan = simulate_unicast_broadcast(d, k, root, BidirectionalOptimalRouter())
    assert stats.delivered_count == d**k - 1
    # The root's out-links carry all N-1 copies: makespan >= (N-1)/(2d).
    assert makespan >= (d**k - 1) / (2 * d)


def test_tree_beats_unicast_broadcast():
    d, k = 2, 5
    root = (0,) * k
    _, tree_time = simulate_tree_broadcast(d, k, root)
    _, unicast_time = simulate_unicast_broadcast(d, k, root, BidirectionalOptimalRouter())
    assert tree_time < unicast_time


def test_default_root_argument_signature():
    with pytest.raises(TypeError):
        simulate_tree_broadcast(2)  # k is required


def test_on_deliver_hook_fires_for_plain_sends():
    from repro.network.simulator import Simulator

    sim = Simulator(2, 3)
    seen = []
    sim.on_deliver = lambda message, s: seen.append(message.destination)
    sim.send((0, 0, 1), (1, 1, 1), BidirectionalOptimalRouter())
    sim.run()
    assert seen == [(1, 1, 1)]


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2), (2, 6)])
def test_tree_aggregation_counts_every_site(d, k):
    from repro.network.broadcast import simulate_tree_aggregation

    stats, completion = simulate_tree_aggregation(d, k)
    # Every non-root site sends exactly one combined message up.
    assert stats.delivered_count == d**k - 1
    assert completion >= broadcast_lower_bound(d, k, (0,) * k)


def test_aggregation_root_receives_few_messages():
    from repro.graphs.debruijn import undirected_graph
    from repro.network.broadcast import simulate_tree_aggregation

    d, k = 2, 5
    stats, _ = simulate_tree_aggregation(d, k)
    root = (0,) * k
    root_in = sum(load for (tail, head), load in stats.link_loads.items() if head == root)
    # Aggregation: the root hears only from its tree children (<= 2d),
    # not from all N-1 sites.
    assert root_in <= 2 * d


def test_aggregation_completion_beats_naive_all_to_one():
    from repro.network.broadcast import simulate_tree_aggregation, simulate_unicast_broadcast
    from repro.network.router import BidirectionalOptimalRouter

    d, k = 2, 5
    _, aggregated = simulate_tree_aggregation(d, k)
    # Naive all-to-one has the same cost structure as one-to-all unicast
    # (root links serialise N-1 messages); reuse the unicast strawman.
    _, naive = simulate_unicast_broadcast(d, k, (0,) * k, BidirectionalOptimalRouter())
    assert aggregated < naive
