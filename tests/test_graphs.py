"""Tests for :mod:`repro.graphs.debruijn` and :mod:`repro.graphs.properties`."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs.debruijn import DeBruijnGraph, directed_graph, undirected_graph
from repro.graphs.properties import (
    count_arcs_with_multiplicity,
    degree_census,
    diameter,
    eccentricity,
    expected_directed_census,
    expected_undirected_census,
    is_connected,
    line_digraph_vertex_map,
    self_loop_vertices,
    structural_report,
)

CENSUS_GRAPHS = [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]


# ----------------------------------------------------------------------
# Basic shape
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2), (5, 2)])
def test_order_and_vertex_enumeration(d, k):
    g = DeBruijnGraph(d, k)
    assert g.order == d**k
    assert len(list(g.vertices())) == d**k
    assert len(g) == d**k


def test_is_vertex():
    g = DeBruijnGraph(2, 3)
    assert g.is_vertex((0, 1, 1))
    assert (0, 1, 1) in g
    assert not g.is_vertex((0, 2, 1))
    assert not g.is_vertex((0, 1))


def test_out_in_neighbors_figure1():
    # Figure 1(a): directed DG(2, 3).
    g = directed_graph(2, 3)
    assert g.out_neighbors((0, 1, 1)) == {(1, 1, 0), (1, 1, 1)}
    assert g.in_neighbors((0, 1, 1)) == {(0, 0, 1), (1, 0, 1)}


def test_undirected_neighbors_merge_both_types():
    g = undirected_graph(2, 3)
    assert g.neighbors((0, 1, 1)) == {(1, 1, 0), (1, 1, 1), (0, 0, 1), (1, 0, 1)}


def test_self_loops_dropped_by_default_kept_on_request():
    g = undirected_graph(2, 3)
    assert (0, 0, 0) not in g.neighbors((0, 0, 0))
    assert (0, 0, 0) in g.neighbors((0, 0, 0), include_self=True)


def test_invalid_parameters_rejected():
    with pytest.raises(InvalidParameterError):
        DeBruijnGraph(1, 3)
    with pytest.raises(InvalidParameterError):
        DeBruijnGraph(2, 0)


# ----------------------------------------------------------------------
# Edges and arc counts (paper Section 1)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", CENSUS_GRAPHS)
def test_raw_arc_count_is_Nd(d, k):
    g = directed_graph(d, k)
    assert count_arcs_with_multiplicity(g) == d**k * d


def test_directed_simple_edges_count():
    # N·d arcs minus the d self-loops (no coincident distinct arcs exist in
    # the one-step left-shift relation).
    g = directed_graph(2, 3)
    assert g.size() == 16 - 2


def test_undirected_simple_edges_figure1b():
    # Figure 1(b): hand count of undirected DG(2, 3) gives 13 edges
    # (16 arcs, minus 2 loops, minus coincidences: 01..10 pairings).
    assert undirected_graph(2, 3).size() == 13


def test_edges_are_valid_and_unique():
    for g in (directed_graph(2, 3), undirected_graph(3, 2)):
        edges = list(g.edges())
        assert len(edges) == len(set(edges))
        for u, v in edges:
            assert u != v
            assert g.has_edge(u, v)


def test_has_edge_directed_orientation_matters():
    g = directed_graph(2, 3)
    assert g.has_edge((0, 0, 1), (0, 1, 1))
    assert not g.has_edge((0, 1, 1), (0, 0, 1))


def test_undirected_adjacency_is_symmetric():
    g = undirected_graph(2, 4)
    adjacency = g.to_adjacency()
    for u, nbrs in adjacency.items():
        for v in nbrs:
            assert u in adjacency[v]


# ----------------------------------------------------------------------
# Degree census (Figure 1 / E1)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", CENSUS_GRAPHS)
def test_directed_census_matches_paper_formula(d, k):
    assert degree_census(directed_graph(d, k)) == expected_directed_census(d, k)


@pytest.mark.parametrize("d,k", CENSUS_GRAPHS)
def test_undirected_census_matches_corrected_formula(d, k):
    assert degree_census(undirected_graph(d, k)) == expected_undirected_census(d, k)


def test_directed_census_k1_all_vertices_constant():
    assert degree_census(directed_graph(3, 1)) == {4: 3}
    assert expected_directed_census(3, 1) == {4: 3}


def test_undirected_census_formula_requires_k2():
    with pytest.raises(InvalidParameterError):
        expected_undirected_census(2, 1)


def test_self_loop_vertices_are_the_constants():
    assert set(self_loop_vertices(DeBruijnGraph(3, 2))) == {(0, 0), (1, 1), (2, 2)}


# ----------------------------------------------------------------------
# Diameter and connectivity (paper Section 2 preamble)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3)])
@pytest.mark.parametrize("directed", [True, False])
def test_diameter_is_k(d, k, directed):
    assert diameter(DeBruijnGraph(d, k, directed=directed)) == k


def test_eccentricity_of_constant_word_is_k():
    # Paper: distance from (0,...,0) to (1,...,1) is k.
    assert eccentricity(directed_graph(2, 4), (0, 0, 0, 0)) == 4


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2), (2, 5)])
@pytest.mark.parametrize("directed", [True, False])
def test_connectivity(d, k, directed):
    assert is_connected(DeBruijnGraph(d, k, directed=directed))


# ----------------------------------------------------------------------
# Line digraph recursion
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (3, 2)])
def test_line_digraph_is_isomorphic_to_next_k(d, k):
    mapping = line_digraph_vertex_map(d, k)
    # Bijection onto the vertices of DG(d, k+1).
    images = set(mapping.values())
    assert len(images) == d ** (k + 1)
    # Arc adjacency in the line digraph == left-shift adjacency of images:
    # arcs e1 = (u, v), e2 = (v, w) chain iff image(e2) is a left shift of
    # image(e1).
    bigger = directed_graph(d, k + 1)
    for (u1, v1), image1 in mapping.items():
        for (u2, v2), image2 in mapping.items():
            chains = v1 == u2
            adjacent = image2 in bigger.out_neighbors(image1)
            assert chains == adjacent


def test_structural_report_keys():
    report = structural_report(undirected_graph(2, 3))
    assert report["order"] == 8
    assert report["diameter"] == 3
    assert report["connected"] is True
    assert report["degree_census"] == {4: 4, 3: 2, 2: 2}


def test_repr_mentions_orientation():
    assert "undirected" in repr(undirected_graph(2, 3))
    assert "directed" in repr(directed_graph(2, 3))
