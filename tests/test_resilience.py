"""Tests for local detours, incremental repair, and self-healing tables."""

from __future__ import annotations

import random

import pytest

from repro.core.routing import path_words
from repro.core.tables import CompiledRouteTable
from repro.exceptions import InvalidParameterError
from repro.network.resilience import (
    LocalDetourPolicy,
    SelfHealingRouteTable,
    compile_with_failures,
    repair_route_table,
)
from repro.network.router import BidirectionalOptimalRouter, TableDrivenRouter
from repro.network.simulator import Simulator

CONFIGS = [(2, 4, False), (2, 5, False), (3, 3, False), (2, 4, True)]


def _bytes_of(table):
    return bytes(table.actions), bytes(table.distances)


# ----------------------------------------------------------------------
# Incremental repair: byte identity against the full recompile
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k,directed", CONFIGS)
def test_repair_is_byte_identical_to_full_recompile(d, k, directed):
    table = CompiledRouteTable.compile(d, k, directed=directed, workers=1)
    n = table.order
    rng = random.Random(f"repair:{d}:{k}:{directed}")
    for _ in range(8):
        failed = rng.sample(range(n), rng.randint(1, max(1, n // 6)))
        patched = table.thaw()
        report = repair_route_table(patched, failed)
        reference = compile_with_failures(d, k, directed, failed)
        assert _bytes_of(patched) == _bytes_of(reference)
        assert report.rows_scanned == n
        assert (report.rows_repaired + report.rows_patched
                + report.rows_untouched) == n
        assert sorted(report.touched_rows) == sorted(set(report.touched_rows))


def test_repair_with_word_tuple_failures():
    table = CompiledRouteTable.compile(2, 4, workers=1)
    patched = table.thaw()
    repair_route_table(patched, [(0, 1, 1, 0)])
    packed = table.space.pack((0, 1, 1, 0))
    reference = compile_with_failures(2, 4, failed=[packed])
    assert _bytes_of(patched) == _bytes_of(reference)


def test_repair_of_empty_failed_set_is_a_noop():
    table = CompiledRouteTable.compile(2, 4, workers=1).thaw()
    before = _bytes_of(table)
    report = repair_route_table(table, [])
    assert _bytes_of(table) == before
    assert report.rows_scanned == 0


def test_repair_refuses_immutable_buffers():
    table = CompiledRouteTable.compile(2, 3, workers=1)  # bytes buffers
    with pytest.raises(InvalidParameterError):
        repair_route_table(table, [0])


def test_repair_rejects_out_of_range_packed_site():
    table = CompiledRouteTable.compile(2, 3, workers=1).thaw()
    with pytest.raises(InvalidParameterError):
        repair_route_table(table, [table.order])


def test_compile_with_failures_empty_set_matches_plain_compile():
    plain = CompiledRouteTable.compile(2, 4, workers=1)
    reference = compile_with_failures(2, 4)
    assert _bytes_of(plain) == _bytes_of(reference)


def test_failed_destination_row_reads_unreachable():
    table = CompiledRouteTable.compile(2, 4, workers=1).thaw()
    dead = 5
    repair_route_table(table, [dead])
    n = table.order
    assert bytes(table.actions[dead * n:(dead + 1) * n]) == b"\xff" * n
    # And nobody routes *through* the dead site: its column is cut too.
    for y in range(n):
        assert table.actions[y * n + dead] == 0xFF or y == dead


# ----------------------------------------------------------------------
# thaw / writable load
# ----------------------------------------------------------------------


def test_thaw_copies_and_decouples():
    table = CompiledRouteTable.compile(2, 3, workers=1)
    thawed = table.thaw()
    assert not table.mutable and thawed.mutable
    assert _bytes_of(table) == _bytes_of(thawed)
    thawed.actions[0] = 0xFF
    assert table.actions[0] != 0xFF or _bytes_of(table) != _bytes_of(thawed)


def test_writable_mmap_load_patches_in_place_without_touching_file(tmp_path):
    path = str(tmp_path / "dg.routes")
    table = CompiledRouteTable.compile(2, 4, workers=1)
    table.save(path)
    working = CompiledRouteTable.load(path, writable=True)
    assert working.mutable
    repair_route_table(working, [3, 7])
    reference = compile_with_failures(2, 4, failed=[3, 7])
    assert _bytes_of(working) == _bytes_of(reference)
    working.close()
    # ACCESS_COPY: the file on disk is still the pristine table.
    pristine = CompiledRouteTable.load(path, use_mmap=False)
    assert _bytes_of(pristine) == _bytes_of(table)


def test_writable_non_mmap_load_is_mutable(tmp_path):
    path = str(tmp_path / "dg.routes")
    CompiledRouteTable.compile(2, 3, workers=1).save(path)
    working = CompiledRouteTable.load(path, use_mmap=False, writable=True)
    assert working.mutable
    repair_route_table(working, [1])


# ----------------------------------------------------------------------
# Self-healing tables under churn
# ----------------------------------------------------------------------


def test_self_healing_tracks_churn_and_reverts():
    base = CompiledRouteTable.compile(2, 4, workers=1)
    healer = SelfHealingRouteTable(base.thaw())
    rng = random.Random("churn")
    n = base.order
    for _ in range(10):
        failed = rng.sample(range(n), rng.randint(0, n // 4))
        healer.sync(failed)
        reference = compile_with_failures(2, 4, failed=failed)
        assert _bytes_of(healer.table) == _bytes_of(reference)
    healer.sync([])
    assert _bytes_of(healer.table) == _bytes_of(base)


def test_self_healing_sync_is_idempotent():
    healer = SelfHealingRouteTable(
        CompiledRouteTable.compile(2, 3, workers=1).thaw())
    assert healer.sync([2]) is not None
    assert healer.sync([2]) is None  # same failed set: no work
    assert healer.repairs == 1


def test_self_healing_thaws_immutable_input():
    table = CompiledRouteTable.compile(2, 3, workers=1)  # immutable
    healer = SelfHealingRouteTable(table)
    assert healer.table.mutable
    healer.sync([1])  # must not raise


# ----------------------------------------------------------------------
# Local detours in the simulator
# ----------------------------------------------------------------------


def _midpoint_packed(table, source, destination):
    """The packed first hop the compiled table picks for the pair."""
    space = table.space
    return table.next_hop_packed(space.pack(source), space.pack(destination))


def test_table_mode_detour_beats_oblivious_drop():
    table = CompiledRouteTable.compile(2, 4, workers=1)
    space = table.space
    dead = (0, 1, 1, 0)
    router = TableDrivenRouter(table=table)

    def run(policy):
        sim = Simulator(2, 4, detour_policy=policy)
        sim.fail_node(dead, at=0.0)
        t = 1.0
        for value in range(table.order):
            source = space.unpack(value)
            for dest_value in (table.order - 1, 1):
                destination = space.unpack(dest_value)
                if dead in (source, destination) or source == destination:
                    continue
                sim.send(source, destination, router, at=t)
                t += 1.0
        return sim.run()

    oblivious = run(None)
    detoured = run(LocalDetourPolicy(table))
    assert oblivious.dropped_count > 0  # the failure actually bites
    assert detoured.delivered_count > oblivious.delivered_count
    assert detoured.detoured > 0


def test_table_mode_detour_avoids_the_failed_hop():
    table = CompiledRouteTable.compile(2, 4, workers=1)
    space = table.space
    source, destination = (0, 0, 0, 1), (1, 1, 1, 1)
    dead = space.unpack(_midpoint_packed(table, source, destination))
    sim = Simulator(2, 4, detour_policy=LocalDetourPolicy(table))
    sim.fail_node(dead, at=0.0)
    message = sim.send(source, destination, TableDrivenRouter(table=table),
                       at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 1
    assert dead not in message.trace
    assert message.detours_used >= 1
    assert stats.detoured >= 1


def test_detour_budget_exhaustion_falls_back_to_drop():
    table = CompiledRouteTable.compile(2, 4, workers=1)
    space = table.space
    source, destination = (0, 0, 0, 1), (1, 1, 1, 1)
    dead = space.unpack(_midpoint_packed(table, source, destination))
    policy = LocalDetourPolicy(table, max_detours=0)
    sim = Simulator(2, 4, detour_policy=policy)
    sim.fail_node(dead, at=0.0)
    sim.send(source, destination, TableDrivenRouter(table=table), at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 0
    assert stats.dropped_count == 1
    assert stats.detoured == 0


def test_path_mode_detour_uses_disjoint_family():
    table = CompiledRouteTable.compile(2, 4, workers=1)
    router = BidirectionalOptimalRouter(use_wildcards=False)
    source, destination = (0, 0, 0, 1), (1, 1, 1, 1)
    first_hop = path_words(source, router.plan(source, destination), 2)[1]
    sim = Simulator(2, 4, detour_policy=LocalDetourPolicy(table))
    sim.fail_node(first_hop, at=0.0)
    message = sim.send(source, destination, router, at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 1
    assert first_hop not in message.trace
    assert stats.detoured >= 1


def test_detour_preferred_over_omniscient_reroute():
    # With both enabled, the local detour handles the block (detoured
    # increments) before the omniscient reroute is even consulted.
    table = CompiledRouteTable.compile(2, 4, workers=1)
    space = table.space
    source, destination = (0, 0, 0, 1), (1, 1, 1, 1)
    dead = space.unpack(_midpoint_packed(table, source, destination))
    sim = Simulator(2, 4, reroute_on_failure=True,
                    detour_policy=LocalDetourPolicy(table))
    sim.fail_node(dead, at=0.0)
    sim.send(source, destination, TableDrivenRouter(table=table), at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 1
    assert stats.detoured >= 1
    assert stats.rerouted == 0


def test_repaired_table_routes_around_failure_without_detours():
    base = CompiledRouteTable.compile(2, 4, workers=1)
    space = base.space
    source, destination = (0, 0, 0, 1), (1, 1, 1, 1)
    dead = space.unpack(_midpoint_packed(base, source, destination))
    healer = SelfHealingRouteTable(base.thaw())
    healer.sync([dead])
    sim = Simulator(2, 4)
    sim.fail_node(dead, at=0.0)
    message = sim.send(source, destination,
                       TableDrivenRouter(table=healer.table), at=1.0)
    stats = sim.run()
    assert stats.delivered_count == 1
    assert dead not in message.trace
    assert stats.detoured == 0  # the table itself already knows the way


def test_thaw_of_freshly_loaded_table_is_repairable(tmp_path):
    path = str(tmp_path / "dg.routes")
    original = CompiledRouteTable.compile(2, 4, workers=1)
    original.save(path)
    with open(path, "rb") as handle:
        disk_before = handle.read()

    loaded = CompiledRouteTable.load(path)  # read-only mmap
    assert not loaded.mutable
    working = loaded.thaw()
    assert working.mutable
    repair_route_table(working, [5])
    assert _bytes_of(working) == _bytes_of(
        compile_with_failures(2, 4, failed=[5]))
    # The read-only mapping is untouched by the thawed copy's repair...
    assert _bytes_of(loaded) == _bytes_of(original)
    loaded.close()
    # ...and so is the file on disk, byte for byte.
    with open(path, "rb") as handle:
        assert handle.read() == disk_before
