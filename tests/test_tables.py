"""Tests for compiled route tables (repro.core.tables) and the
table-driven router/simulator fast path.

Coverage: compiled distances and paths against the Algorithm 1/2
planners, the one-byte action encoding round trip, save/mmap-load byte
identity, and full simulator parity (every message delivered through
the O(1) path with optimal hop counts, including under failures).
"""

from __future__ import annotations

import random

import pytest

from repro.core.distance import directed_distance, undirected_distance
from repro.core.packed import PackedSpace
from repro.core.routing import (
    Direction,
    RoutingStep,
    action_from_step,
    path_words,
    step_from_action,
)
from repro.core.tables import MAGIC, CompiledRouteTable, table_path
from repro.exceptions import InvalidParameterError, InvalidWordError, RoutingError
from repro.network.router import BidirectionalOptimalRouter, TableDrivenRouter
from repro.network.simulator import Simulator, run_workload

from tests.conftest import SMALL_GRAPHS, all_words, random_words


# ----------------------------------------------------------------------
# Action byte encoding
# ----------------------------------------------------------------------


def test_action_step_roundtrip():
    for d in (2, 3, 5):
        for a in range(d):
            left = step_from_action(a, d)
            assert left == RoutingStep(Direction.LEFT, a)
            assert action_from_step(left, d) == a
            right = step_from_action(d + a, d)
            assert right == RoutingStep(Direction.RIGHT, a)
            assert action_from_step(right, d) == d + a


def test_action_step_rejects_out_of_range():
    with pytest.raises(RoutingError):
        step_from_action(2 * 2, 2)  # first invalid byte for d=2
    with pytest.raises(RoutingError):
        action_from_step(RoutingStep(Direction.LEFT, None), 2)  # wildcard


def test_apply_action_matches_shift_semantics():
    space = PackedSpace(2, 4)
    value = space.pack((1, 0, 1, 1))
    assert space.unpack(space.apply_action(value, 0)) == (0, 1, 1, 0)
    assert space.unpack(space.apply_action(value, 2 + 1)) == (1, 1, 0, 1)
    with pytest.raises(InvalidWordError):
        space.apply_action(value, 4)


# ----------------------------------------------------------------------
# Compiled distances and paths vs the paper's planners
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", SMALL_GRAPHS, ids=lambda p: str(p))
def test_compiled_table_exhaustive_undirected(d, k):
    table = CompiledRouteTable.compile(d, k, workers=1)
    for x in all_words(d, k):
        for y in all_words(d, k):
            expected = undirected_distance(x, y)
            assert table.distance(x, y) == expected
            path = table.path(x, y)
            assert len(path) == expected
            assert path_words(x, path, d)[-1] == y


@pytest.mark.parametrize("d,k", [(2, 4), (3, 3)], ids=lambda p: str(p))
def test_compiled_table_exhaustive_directed(d, k):
    table = CompiledRouteTable.compile(d, k, directed=True, workers=1)
    for x in all_words(d, k):
        for y in all_words(d, k):
            expected = directed_distance(x, y)
            assert table.distance(x, y) == expected
            path = table.path(x, y)
            assert len(path) == expected
            assert all(step.direction is Direction.LEFT for step in path)


@pytest.mark.parametrize("d,k", [(2, 6), (3, 4)], ids=lambda p: str(p))
def test_table_router_matches_optimal_lengths(d, k):
    """The ISSUE acceptance pairing: table paths == Algorithm 2 lengths."""
    router = TableDrivenRouter(d=d, k=k, workers=2)
    optimal = BidirectionalOptimalRouter(use_wildcards=False)
    words = all_words(d, k)
    rng = random.Random(0x7AB1E)
    for _ in range(400):
        x, y = rng.choice(words), rng.choice(words)
        assert len(router.plan(x, y)) == len(optimal.plan(x, y))


def test_next_hop_decreases_distance():
    table = CompiledRouteTable.compile(2, 5, workers=1)
    router = TableDrivenRouter(table=table)
    space = table.space
    for x, y in zip(random_words(2, 5, 30, seed=1),
                    random_words(2, 5, 30, seed=2)):
        if x == y:
            continue
        step = router.next_hop(x, y)
        nxt = space.unpack(space.apply_action(space.pack(x),
                                              action_from_step(step, 2)))
        assert undirected_distance(nxt, y) == undirected_distance(x, y) - 1


def test_memory_cells_reports_compact_footprint():
    router = TableDrivenRouter(d=2, k=4)
    assert router.memory_cells() == 0  # nothing compiled yet
    router.plan((0, 0, 0, 0), (1, 1, 1, 1))
    n = 2**4
    assert router.memory_cells() == 2 * n * n  # action + distance bytes


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("use_mmap", [True, False], ids=["mmap", "read"])
def test_save_load_roundtrip_byte_identical(tmp_path, use_mmap):
    table = CompiledRouteTable.compile(3, 3, workers=1)
    path = str(tmp_path / "table.routes")
    written = table.save(path)
    # v2 layout: magic + fixed header + (body_crc, header_crc) + payload.
    assert written == len(MAGIC) + 12 + 8 + table.nbytes
    loaded = CompiledRouteTable.load(path, use_mmap=use_mmap)
    try:
        assert (loaded.d, loaded.k, loaded.directed) == (3, 3, False)
        assert bytes(loaded.actions) == bytes(table.actions)
        assert bytes(loaded.distances) == bytes(table.distances)
        for x, y in zip(random_words(3, 3, 20, seed=3),
                        random_words(3, 3, 20, seed=4)):
            assert loaded.distance(x, y) == table.distance(x, y)
    finally:
        loaded.close()
    assert table_path(path) == (3, 3, False)


def test_load_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.routes"
    bad.write_bytes(b"not a route table at all")
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(bad))
    truncated = tmp_path / "short.routes"
    table = CompiledRouteTable.compile(2, 2, workers=1)
    full = str(tmp_path / "full.routes")
    table.save(full)
    with open(full, "rb") as handle:
        truncated.write_bytes(handle.read()[:-5])
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(truncated))


def test_load_rejects_wrong_magic_and_corrupt_header(tmp_path):
    table = CompiledRouteTable.compile(2, 2, workers=1)
    full = str(tmp_path / "full.routes")
    table.save(full)
    with open(full, "rb") as handle:
        payload = bytearray(handle.read())

    # Right size, wrong magic: a shard file (or anything else) must not
    # load as a full table.
    wrong_magic = tmp_path / "magic.routes"
    swapped = bytearray(payload)
    swapped[:5] = b"DBRS\x01"
    wrong_magic.write_bytes(swapped)
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(wrong_magic))

    # Right magic and size, self-inconsistent header (order != d**k).
    corrupt = tmp_path / "corrupt.routes"
    broken = bytearray(payload)
    broken[5] = 3  # d: 2 -> 3 without touching the stored order
    corrupt.write_bytes(broken)
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(corrupt))

    # A shorter-than-header file dies on the magic check, not an unpack.
    stub = tmp_path / "stub.routes"
    stub.write_bytes(payload[:7])
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(stub))

    # The original still loads after all that slicing.
    loaded = CompiledRouteTable.load(full)
    try:
        assert bytes(loaded.actions) == bytes(table.actions)
    finally:
        loaded.close()


def test_save_is_atomic_and_checksummed(tmp_path):
    """Crash-safety of v2 saves: no torn files, corruption detected."""
    table = CompiledRouteTable.compile(2, 3, workers=1)
    path = str(tmp_path / "table.routes")
    table.save(path)

    # No temporary droppings survive a successful save.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["table.routes"]

    # A torn write (simulated: the new payload truncated mid-body, as a
    # crash between write and replace would leave a tmp file — or a
    # non-atomic writer would leave the real file) must not load.
    with open(path, "rb") as handle:
        payload = handle.read()
    torn = tmp_path / "torn.routes"
    torn.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(torn))

    # A single flipped header byte fails the header checksum.
    flipped = bytearray(payload)
    flipped[6] ^= 0xFF  # k field
    bad_header = tmp_path / "badheader.routes"
    bad_header.write_bytes(flipped)
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(bad_header))

    # A flipped body byte fails the body checksum on the full-read path.
    rotten = bytearray(payload)
    rotten[-1] ^= 0xFF
    bad_body = tmp_path / "badbody.routes"
    bad_body.write_bytes(rotten)
    with pytest.raises(InvalidParameterError):
        CompiledRouteTable.load(str(bad_body), use_mmap=False)


def test_load_accepts_legacy_v1_files(tmp_path):
    """Tables saved by the pre-checksum writer keep loading."""
    import struct as _struct

    table = CompiledRouteTable.compile(2, 3, workers=1)
    legacy = str(tmp_path / "legacy.routes")
    with open(legacy, "wb") as handle:
        handle.write(b"DBRT\x01")
        handle.write(_struct.pack("<BBBxQ", table.d, table.k,
                                  int(table.directed), table.order))
        handle.write(bytes(table.actions))
        handle.write(bytes(table.distances))
    for use_mmap in (True, False):
        loaded = CompiledRouteTable.load(legacy, use_mmap=use_mmap)
        try:
            assert bytes(loaded.actions) == bytes(table.actions)
            assert bytes(loaded.distances) == bytes(table.distances)
        finally:
            loaded.close()
    assert table_path(legacy) == (2, 3, False)


def test_compile_kernels_are_byte_identical():
    pytest.importorskip("numpy")
    for directed in (False, True):
        python = CompiledRouteTable.compile(2, 6, directed=directed,
                                            workers=1, kernel="python")
        array = CompiledRouteTable.compile(2, 6, directed=directed,
                                           workers=1, kernel="array")
        assert bytes(array.actions) == bytes(python.actions)
        assert bytes(array.distances) == bytes(python.distances)


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------


def _random_injections(d, k, count, seed):
    rng = random.Random(seed)
    words = all_words(d, k)
    injections = []
    t = 0.0
    made = 0
    while made < count:
        x, y = rng.choice(words), rng.choice(words)
        if x == y:
            continue
        injections.append((t, x, y))
        t += 0.25
        made += 1
    return injections


@pytest.mark.parametrize("d,k", [(2, 5), (3, 3)], ids=lambda p: str(p))
def test_simulator_table_parity_with_optimal(d, k):
    """Table-driven runs deliver everything via the O(1) path with the
    same mean hop count as the Algorithm-2 router."""
    injections = _random_injections(d, k, 60, seed=9)
    table_stats = run_workload(Simulator(d, k),
                               TableDrivenRouter(d=d, k=k), injections)
    optimal_stats = run_workload(
        Simulator(d, k),
        BidirectionalOptimalRouter(use_wildcards=False), injections)
    assert table_stats.delivered_count == len(injections)
    assert table_stats.table_routed == table_stats.delivered_count
    assert table_stats.table_bytes == 2 * (d**k) ** 2
    assert table_stats.mean_hops() == optimal_stats.mean_hops()


def test_simulator_table_reroutes_around_failure():
    """A failed first hop knocks the message off the compiled route; the
    reroute machinery must still deliver it (route_table cleared)."""
    d, k = 2, 4
    table = CompiledRouteTable.compile(d, k, workers=1)
    space = table.space
    source, destination = (0, 1, 0, 1), (1, 1, 1, 0)
    assert table.distance(source, destination) >= 2
    first_hop = space.unpack(table.next_hop_packed(
        space.pack(source), space.pack(destination)))

    simulator = Simulator(d, k, reroute_on_failure=True)
    simulator.fail_node(first_hop, at=0.0)
    message = simulator.send(source, destination,
                             TableDrivenRouter(table=table), at=1.0)
    stats = simulator.run()
    assert stats.delivered_count == 1
    assert stats.rerouted >= 1
    assert message.route_table is None  # the detour left the table route


def test_simulator_drops_when_no_detour_exists():
    """With rerouting disabled, a failed table next hop is a clean drop."""
    d, k = 2, 4
    table = CompiledRouteTable.compile(d, k, workers=1)
    space = table.space
    source, destination = (0, 1, 0, 1), (1, 1, 1, 0)
    first_hop = space.unpack(table.next_hop_packed(
        space.pack(source), space.pack(destination)))
    simulator = Simulator(d, k, reroute_on_failure=False)
    simulator.fail_node(first_hop, at=0.0)
    simulator.send(source, destination, TableDrivenRouter(table=table),
                   at=1.0)
    stats = simulator.run()
    assert stats.delivered_count == 0
    assert stats.dropped_count == 1
