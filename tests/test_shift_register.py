"""Tests for GF(2) polynomials, LFSRs, m-sequences and the B(2,k) bridge."""

from __future__ import annotations

import pytest

from repro.core.word import left_shift
from repro.exceptions import InvalidParameterError
from repro.graphs.sequences import is_debruijn_sequence, windows
from repro.graphs.shift_register import (
    LFSR,
    debruijn_from_m_sequence,
    is_irreducible,
    is_primitive,
    m_sequence,
    polynomial_degree,
    polynomial_mod,
    polynomial_multiply,
    polynomial_pow_mod,
    primitive_polynomials,
)

# x^4 + x + 1 and x^3 + x + 1: textbook primitive polynomials.
P4 = 0b10011
P3 = 0b1011


# ----------------------------------------------------------------------
# GF(2) polynomial arithmetic
# ----------------------------------------------------------------------


def test_degree():
    assert polynomial_degree(0) == -1
    assert polynomial_degree(1) == 0
    assert polynomial_degree(P4) == 4


def test_multiply_known_products():
    # (x + 1)^2 = x^2 + 1 over GF(2)
    assert polynomial_multiply(0b11, 0b11) == 0b101
    # x * (x^2 + x + 1) = x^3 + x^2 + x
    assert polynomial_multiply(0b10, 0b111) == 0b1110


def test_mod_known_remainders():
    # x^4 mod (x^4 + x + 1) = x + 1
    assert polynomial_mod(0b10000, P4) == 0b11
    assert polynomial_mod(0b101, 0b101) == 0


def test_mod_rejects_zero_modulus():
    with pytest.raises(InvalidParameterError):
        polynomial_mod(0b101, 0)


def test_pow_mod_matches_repeated_multiplication():
    value = 1
    for exponent in range(10):
        assert polynomial_pow_mod(0b10, exponent, P4) == value
        value = polynomial_mod(polynomial_multiply(value, 0b10), P4)


# ----------------------------------------------------------------------
# Irreducibility and primitivity
# ----------------------------------------------------------------------


def test_known_irreducibles():
    assert is_irreducible(0b111)  # x^2+x+1
    assert is_irreducible(P3)
    assert is_irreducible(P4)
    assert not is_irreducible(0b101)  # x^2+1 = (x+1)^2
    assert not is_irreducible(0b110)  # x^2+x = x(x+1)
    assert not is_irreducible(1)


def test_known_primitives():
    assert is_primitive(0b111)
    assert is_primitive(P3)
    assert is_primitive(P4)
    # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive (order 5).
    assert is_irreducible(0b11111)
    assert not is_primitive(0b11111)


def test_primitive_polynomial_counts():
    # The number of degree-n primitive polynomials is φ(2^n − 1)/n.
    assert len(primitive_polynomials(2)) == 1
    assert len(primitive_polynomials(3)) == 2
    assert len(primitive_polynomials(4)) == 2
    assert len(primitive_polynomials(5)) == 6


def test_primitive_polynomials_limit():
    assert len(primitive_polynomials(5, limit=2)) == 2


def test_primitive_polynomials_rejects_bad_degree():
    with pytest.raises(InvalidParameterError):
        primitive_polynomials(0)


# ----------------------------------------------------------------------
# LFSR walks are left-shift walks in DG(2, k)
# ----------------------------------------------------------------------


def test_lfsr_steps_are_de_bruijn_left_shifts():
    register = LFSR(P4, (0, 0, 0, 1))
    previous = register.state
    for state in register.states(20):
        assert state == left_shift(previous, state[-1])
        previous = state


def test_lfsr_primitive_period_is_maximal():
    register = LFSR(P4, (0, 0, 0, 1))
    assert register.period() == 15
    register3 = LFSR(P3, (0, 0, 1))
    assert register3.period() == 7


def test_lfsr_zero_state_is_fixed():
    register = LFSR(P4, (0, 0, 0, 0))
    assert register.step() == (0, 0, 0, 0)


def test_lfsr_nonprimitive_period_divides():
    # x^4+x^3+x^2+x+1 has order 5: every nonzero orbit has length 5.
    register = LFSR(0b11111, (0, 0, 0, 1))
    assert register.period() == 5


def test_lfsr_validates_inputs():
    with pytest.raises(InvalidParameterError):
        LFSR(1, (0, 1))
    with pytest.raises(InvalidParameterError):
        LFSR(P4, (0, 1))
    with pytest.raises(InvalidParameterError):
        LFSR(P4, (0, 1, 2, 0))


# ----------------------------------------------------------------------
# m-sequences and the de Bruijn bridge
# ----------------------------------------------------------------------


@pytest.mark.parametrize("taps,k", [(P3, 3), (P4, 4), (0b100101, 5)])
def test_m_sequence_covers_all_nonzero_windows(taps, k):
    assert is_primitive(taps)
    seq = m_sequence(taps)
    assert len(seq) == 2**k - 1
    seen = set(windows(seq, k))
    assert len(seen) == 2**k - 1
    assert (0,) * k not in seen


def test_m_sequence_rejects_nonprimitive():
    with pytest.raises(InvalidParameterError):
        m_sequence(0b11111)


@pytest.mark.parametrize("taps,k", [(P3, 3), (P4, 4), (0b100101, 5)])
def test_debruijn_from_m_sequence_is_valid(taps, k):
    seq = debruijn_from_m_sequence(taps)
    assert is_debruijn_sequence(seq, 2, k)


def test_three_constructions_agree_on_window_sets():
    from repro.graphs.sequences import debruijn_sequence_lyndon

    k = 4
    via_lfsr = debruijn_from_m_sequence(P4)
    via_fkm = debruijn_sequence_lyndon(2, k)
    assert set(windows(via_lfsr, k)) == set(windows(via_fkm, k))
