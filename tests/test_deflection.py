"""Tests for the bufferless deflection-routing model."""

from __future__ import annotations

import random

import pytest

from repro.core.distance import directed_distance
from repro.core.word import iter_words, left_shift
from repro.exceptions import SimulationError
from repro.network.deflection import (
    DeflectionNetwork,
    preferred_port,
    uniform_deflection_workload,
)


# ----------------------------------------------------------------------
# Preferred port = Algorithm 1's move
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2)])
def test_preferred_port_decreases_distance(d, k):
    words = list(iter_words(d, k))
    for x in words:
        for y in words:
            if x == y:
                continue
            port = preferred_port(x, y)
            landing = left_shift(x, port)
            assert directed_distance(landing, y) == directed_distance(x, y) - 1


def test_preferred_port_at_destination_is_zero():
    assert preferred_port((0, 1), (0, 1)) == 0


# ----------------------------------------------------------------------
# Single-packet behaviour
# ----------------------------------------------------------------------


def test_lone_packet_travels_shortest_path():
    net = DeflectionNetwork(2, 4)
    x, y = (0, 1, 1, 0), (1, 0, 0, 1)
    packet = net.try_inject(x, y)
    net.drain()
    assert packet.delivered_at is not None
    assert packet.deflections == 0
    assert packet.hops == directed_distance(x, y)
    # One hop per cycle and delivery checked at cycle start: latency == hops.
    assert packet.latency == packet.hops


def test_packet_to_self_delivered_next_cycle():
    net = DeflectionNetwork(2, 3)
    packet = net.try_inject((0, 1, 1), (0, 1, 1))
    net.drain()
    assert packet.delivered_at == 0
    assert packet.hops == 0


def test_injection_respects_port_capacity():
    d, k = 2, 3
    net = DeflectionNetwork(d, k)
    source = (0, 0, 1)
    accepted = [net.try_inject(source, (1, 1, 0)) for _ in range(d + 2)]
    assert sum(1 for p in accepted if p is not None) == d
    assert net.stats.rejected_injections == 2


# ----------------------------------------------------------------------
# Contention and deflections
# ----------------------------------------------------------------------


def test_contending_packets_deflect_but_deliver():
    d, k = 2, 4
    net = DeflectionNetwork(d, k)
    # Two packets at the same node wanting the same output port.
    source = (0, 0, 0, 0)
    target = (1, 1, 1, 1)
    p1 = net.try_inject(source, target)
    p2 = net.try_inject(source, target)
    net.drain()
    assert p1.delivered_at is not None and p2.delivered_at is not None
    assert p1.deflections + p2.deflections >= 1
    # The loser pays extra hops.
    assert max(p1.hops, p2.hops) > directed_distance(source, target)


def test_oldest_first_priority_wins_arbitration():
    d, k = 2, 4
    net = DeflectionNetwork(d, k, priority="oldest")
    source = (0, 0, 0, 0)
    target = (1, 1, 1, 1)
    old = net.try_inject(source, target)
    net.step()
    # Inject a younger rival at the node the old packet reached.
    # (Find it: old packet moved to left_shift(source, 1).)
    current = left_shift(source, preferred_port(source, target))
    young = net.try_inject(current, target)
    net.drain()
    assert old.deflections == 0  # the senior packet is never deflected
    assert young.delivered_at is not None


def test_closest_first_priority_accepted():
    net = DeflectionNetwork(2, 3, priority="closest")
    net.try_inject((0, 0, 1), (1, 1, 1))
    net.drain()
    assert net.stats.delivered


def test_unknown_priority_rejected():
    with pytest.raises(SimulationError):
        DeflectionNetwork(2, 3, priority="fifo")


# ----------------------------------------------------------------------
# Conservation and capacity invariants under load
# ----------------------------------------------------------------------


@pytest.mark.parametrize("priority", ["oldest", "closest"])
def test_uniform_load_conservation(priority):
    d, k = 2, 4
    net = DeflectionNetwork(d, k, priority=priority)
    workload = uniform_deflection_workload(d, k, cycles=30, injection_rate=0.2,
                                           rng=random.Random(42))
    stats = net.run(workload)
    assert stats.injected + stats.rejected_injections == len(workload)
    assert len(stats.delivered) == stats.injected  # drained completely
    assert net.in_flight == 0
    for packet in stats.delivered:
        assert packet.hops >= 0
        assert packet.latency >= 1 or packet.hops == 0


def test_occupancy_never_exceeds_ports():
    d, k = 2, 3
    net = DeflectionNetwork(d, k)
    workload = uniform_deflection_workload(d, k, cycles=50, injection_rate=0.5,
                                           rng=random.Random(7))
    pending = sorted(workload)
    index = 0
    while index < len(pending) or net.in_flight:
        while index < len(pending) and pending[index][0] <= net.cycle:
            _, s, t = pending[index]
            net.try_inject(s, t)
            index += 1
        for node in list(net._resident):
            assert net.occupancy(node) <= d
        net.step()
        if net.cycle > 10_000:
            pytest.fail("drain did not complete")


def test_deflection_rate_grows_with_load():
    d, k = 2, 4
    light = DeflectionNetwork(d, k)
    light.run(uniform_deflection_workload(d, k, 40, 0.05, random.Random(1)))
    heavy = DeflectionNetwork(d, k)
    heavy.run(uniform_deflection_workload(d, k, 40, 0.6, random.Random(1)))
    assert heavy.stats.deflection_rate() > light.stats.deflection_rate()
    assert heavy.stats.mean_latency() > light.stats.mean_latency()


def test_stats_empty_network():
    net = DeflectionNetwork(2, 3)
    assert net.stats.mean_latency() == 0.0
    assert net.stats.deflection_rate() == 0.0
    assert net.stats.max_latency() == 0
    net.drain()  # no packets: trivially done
    assert net.cycle == 0


# ----------------------------------------------------------------------
# Property-based fuzzing
# ----------------------------------------------------------------------


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    st.integers(0, 2**31 - 1),
    st.sampled_from(["oldest", "closest"]),
    st.floats(0.05, 0.7),
)
@settings(max_examples=40, deadline=None)
def test_random_deflection_runs_conserve_and_deliver(seed, priority, rate):
    d, k = 2, 3
    net = DeflectionNetwork(d, k, priority=priority)
    workload = uniform_deflection_workload(d, k, cycles=15, injection_rate=rate,
                                           rng=random.Random(seed))
    stats = net.run(workload)
    assert stats.injected + stats.rejected_injections == len(workload)
    assert len(stats.delivered) == stats.injected
    assert net.in_flight == 0
    for packet in stats.delivered:
        assert packet.deflections <= packet.hops
        assert packet.latency == packet.delivered_at - packet.injected_at


def test_sustained_load_age_priority_bounds_worst_latency():
    # Under continuous heavy injection, oldest-first arbitration keeps the
    # worst packet latency bounded (no starvation) — checked on a fixed
    # seed with a generous cap.
    d, k = 2, 4
    net = DeflectionNetwork(d, k, priority="oldest")
    stats = net.run(uniform_deflection_workload(d, k, cycles=120, injection_rate=0.5,
                                                rng=random.Random(77)))
    assert stats.max_latency() < 12 * k
