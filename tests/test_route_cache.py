"""Tests for the memoized routing layer (:class:`RouteCache` and wiring).

Covers the cache itself (LRU bounds, counters, isolation of returned
lists), the ``route()`` and :class:`BidirectionalOptimalRouter`
integrations, the simulator-stats exposure, and the brute-witness debug
flag fix.
"""

from __future__ import annotations

import pytest

from repro.core import distance as distance_module
from repro.core.distance import undirected_distance, undirected_witness
from repro.core.routing import RouteCache, RoutingStep, route
from repro.core.word import iter_words
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import all_to_all


def test_route_cache_lru_eviction_and_counters():
    cache = RouteCache(maxsize=2)
    key_a = ((0, 1), (1, 0), False, "auto", True)
    key_b = ((0, 1), (1, 1), False, "auto", True)
    key_c = ((1, 1), (0, 0), False, "auto", True)
    path = [RoutingStep(0, 1)]
    assert cache.get(key_a) is None
    cache.put(key_a, path)
    cache.put(key_b, path)
    assert cache.get(key_a) == path  # refreshes a's recency
    cache.put(key_c, path)  # evicts b, the least recently used
    assert cache.get(key_b) is None
    assert cache.get(key_a) == path
    assert cache.get(key_c) == path
    assert len(cache) == 2
    assert cache.hits == 3
    assert cache.misses == 2
    assert cache.hit_rate == pytest.approx(0.6)
    stats = cache.stats()
    assert stats["entries"] == 2.0 and stats["hits"] == 3.0
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_route_cache_rejects_bad_size():
    with pytest.raises(ValueError):
        RouteCache(maxsize=0)


def test_route_cache_returns_fresh_lists():
    """Callers pop steps off routes in flight; hits must not alias."""
    cache = RouteCache()
    first = route((0, 0, 1), (1, 1, 1), d=2, cache=cache)
    first.pop()  # simulator-style consumption
    second = route((0, 0, 1), (1, 1, 1), d=2, cache=cache)
    assert len(second) == undirected_distance((0, 0, 1), (1, 1, 1))
    assert cache.hits == 1 and cache.misses == 1


def test_route_with_cache_matches_uncached_exhaustively():
    d, k = 2, 4
    cache = RouteCache()
    words = list(iter_words(d, k))
    for directed in (False, True):
        for x in words:
            for y in words:
                expected = route(x, y, d, directed=directed)
                got = route(x, y, d, directed=directed, cache=cache)
                assert got == expected
                # Second call is a hit and still identical.
                assert route(x, y, d, directed=directed, cache=cache) == expected
    assert cache.hits >= len(words) ** 2


def test_bidirectional_router_cache_wiring():
    router = BidirectionalOptimalRouter()
    source, destination = (0, 0, 1, 1), (1, 0, 1, 0)
    cold = router.plan(source, destination)
    warm = router.plan(source, destination)
    assert cold == warm
    assert router.cache is not None
    assert router.cache.hits == 1 and router.cache.misses == 1
    assert router.memory_cells() == 1
    uncached = BidirectionalOptimalRouter(cache_size=0)
    assert uncached.cache is None
    assert uncached.plan(source, destination) == cold
    assert uncached.memory_cells() == 0


def test_simulator_stats_expose_cache_counters():
    d, k = 2, 3
    router = BidirectionalOptimalRouter()
    simulator = Simulator(d, k)
    # Two identical all-to-all rounds: the second round hits the cache.
    stats = run_workload(simulator, router, all_to_all(d, k, rounds=2))
    assert stats.route_cache_misses > 0
    assert stats.route_cache_hits > 0
    assert stats.route_cache_hit_rate() == pytest.approx(
        stats.route_cache_hits / (stats.route_cache_hits + stats.route_cache_misses)
    )
    summary = stats.summary()
    assert summary["route_cache_hits"] == float(stats.route_cache_hits)
    assert summary["route_cache_misses"] == float(stats.route_cache_misses)
    assert 0.0 < summary["route_cache_hit_rate"] < 1.0
    windowed = stats.window(0.0)
    assert windowed.route_cache_hits == stats.route_cache_hits


def test_brute_witness_computed_once_and_checked_under_flag(monkeypatch):
    """method='brute' no longer does double work unless the flag is set."""
    calls = {"brute": 0}
    real_brute = distance_module.undirected_distance_brute

    def counting_brute(x, y):
        calls["brute"] += 1
        return real_brute(x, y)

    monkeypatch.setattr(distance_module, "undirected_distance_brute", counting_brute)
    x, y = (0, 0, 1, 1), (1, 1, 0, 0)
    witness = undirected_witness(x, y, method="brute")
    assert calls["brute"] == 0  # no double work by default
    monkeypatch.setattr(distance_module, "BRUTE_CHECKS_WITNESS", True)
    checked = undirected_witness(x, y, method="brute")
    assert calls["brute"] == 1  # the cross-check runs under the debug flag
    assert checked == witness
    assert witness.distance == real_brute(x, y)
