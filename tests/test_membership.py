"""Tests for the SWIM-style distributed failure detector (E20)."""

from __future__ import annotations

import pytest

from repro.core.tables import CompiledRouteTable
from repro.exceptions import InvalidParameterError
from repro.network.membership import (
    ALIVE,
    DEAD,
    SUSPECT,
    MembershipView,
    OracleMembership,
    SwimConfig,
    SwimDetector,
)
from repro.network.resilience import LocalDetourPolicy
from repro.network.router import TableDrivenRouter
from repro.network.simulator import Simulator


def _detector(d=2, k=3, horizon=400.0, **knobs):
    simulator = Simulator(d, k)
    config = SwimConfig(seed="test-swim", **knobs)
    return simulator, SwimDetector(simulator, config, horizon=horizon)


# ----------------------------------------------------------------------
# Configuration and construction
# ----------------------------------------------------------------------


@pytest.mark.parametrize("bad", [
    dict(probe_interval=0.0),
    dict(probe_timeout=-1.0),
    dict(suspicion_timeout=0.0),
    dict(indirect_probes=-1),
    dict(piggyback_limit=0),
])
def test_swim_config_rejects_bad_knobs(bad):
    with pytest.raises(InvalidParameterError):
        SwimConfig(**bad)


def test_detector_requires_positive_horizon():
    simulator = Simulator(2, 3)
    with pytest.raises(InvalidParameterError):
        SwimDetector(simulator, SwimConfig())
    with pytest.raises(InvalidParameterError):
        SwimDetector(simulator, SwimConfig(), horizon=0.0)


def test_adjacency_excludes_self_loops():
    _, detector = _detector()
    for site in ((0, 0, 0), (1, 1, 1)):
        neighbors = detector._neighbors[site]
        assert site not in neighbors
        assert neighbors  # still has someone to probe


# ----------------------------------------------------------------------
# The oracle implementation of the view protocol
# ----------------------------------------------------------------------


def test_oracle_membership_mirrors_simulator_ground_truth():
    simulator = Simulator(2, 3)
    oracle = OracleMembership(simulator)
    dead = (0, 1, 1)
    simulator.fail_node(dead, at=1.0)
    simulator.run()
    assert isinstance(oracle, MembershipView)
    assert oracle.state(dead) == DEAD
    assert not oracle.is_alive(dead)
    assert not oracle.trusts(dead)
    assert oracle.dead_sites() == frozenset([dead])
    assert oracle.state((0, 0, 1)) == ALIVE
    # Every observer shares the one omniscient view.
    assert oracle.view_at((1, 0, 1)) is oracle


# ----------------------------------------------------------------------
# SiteView merge rules (SWIM ordering + firsthand evidence)
# ----------------------------------------------------------------------


def test_site_view_suspect_overrides_alive_at_equal_incarnation():
    _, detector = _detector()
    view = detector.view_at((0, 0, 1))
    subject = (0, 1, 0)
    assert view.state(subject) == ALIVE
    assert view.apply(SUSPECT, subject, 0)
    assert view.state(subject) == SUSPECT
    # Hearsay ALIVE at the same incarnation does not clear the suspicion.
    assert not view.apply(ALIVE, subject, 0)
    assert view.state(subject) == SUSPECT


def test_site_view_firsthand_alive_clears_same_incarnation_suspect():
    _, detector = _detector()
    view = detector.view_at((0, 0, 1))
    subject = (0, 1, 0)
    view.apply(SUSPECT, subject, 0)
    assert view.apply(ALIVE, subject, 0, firsthand=True)
    assert view.state(subject) == ALIVE


def test_site_view_fresher_incarnation_refutes_suspicion():
    _, detector = _detector()
    view = detector.view_at((0, 0, 1))
    subject = (0, 1, 0)
    view.apply(SUSPECT, subject, 0)
    assert view.apply(ALIVE, subject, 1)  # the subject's own refutation
    assert view.state(subject) == ALIVE
    assert view.incarnation_of(subject) == 1
    # Stale records at older incarnations bounce off.
    assert not view.apply(SUSPECT, subject, 0)
    assert not view.apply(DEAD, subject, 0)
    assert view.state(subject) == ALIVE


def test_site_view_dead_overrides_suspect_and_sticks():
    _, detector = _detector()
    view = detector.view_at((0, 0, 1))
    subject = (0, 1, 0)
    view.apply(SUSPECT, subject, 0)
    assert view.apply(DEAD, subject, 0)
    assert view.state(subject) == DEAD
    assert subject in view.dead_sites()
    # Same-incarnation SUSPECT (or hearsay ALIVE) cannot demote DEAD.
    assert not view.apply(SUSPECT, subject, 0)
    assert not view.apply(ALIVE, subject, 0)
    assert view.state(subject) == DEAD


def test_site_view_refutes_accusations_about_itself():
    _, detector = _detector()
    observer = (0, 0, 1)
    view = detector.view_at(observer)
    assert view.incarnation == 0
    assert view.apply(SUSPECT, observer, 0)
    # The observer never believes itself suspect: it outbids the
    # accusation with a fresher incarnation instead.
    assert view.state(observer) == ALIVE
    assert view.incarnation == 1
    # An accusation at the already-superseded incarnation is a no-op.
    assert not view.apply(SUSPECT, observer, 0)
    assert view.incarnation == 1


def test_collect_piggyback_drains_the_epidemic_budget():
    _, detector = _detector()
    view = detector.view_at((0, 0, 1))
    subject = (0, 1, 0)
    view.apply(SUSPECT, subject, 0)
    budget = detector.update_budget
    sends = 0
    while True:
        batch = view.collect_piggyback(limit=4)
        if not batch:
            break
        assert batch == [(SUSPECT, subject, 0)]
        sends += 1
        assert sends <= budget
    assert sends == budget


def test_suspected_sites_tracks_the_refutation_window():
    _, detector = _detector()
    view = detector.view_at((0, 0, 1))
    subject = (0, 1, 0)
    view.apply(SUSPECT, subject, 0)
    assert view.suspected_sites() == frozenset([subject])
    view.apply(DEAD, subject, 0)
    assert view.suspected_sites() == frozenset()


# ----------------------------------------------------------------------
# End-to-end detection in the simulator
# ----------------------------------------------------------------------


def _run_outage(recover_at=None, horizon=400.0):
    simulator, detector = _detector(horizon=horizon)
    dead = (0, 1, 1)
    simulator.fail_node(dead, at=50.0)
    if recover_at is not None:
        simulator.recover_node(dead, at=recover_at)
    detector.start()
    simulator.run()
    return simulator, detector, dead


def test_detector_convicts_a_silent_site():
    simulator, detector, dead = _run_outage()
    assert detector.detected_dead() == frozenset([dead])
    report = detector.finalize()
    assert report.outages == 1
    assert report.detected == 1
    assert report.false_positives == 0
    assert len(report.latencies) == 1
    # Latency is bounded by the detection budget: roughly one probe
    # interval + two probe timeouts + the suspicion window.
    assert 0 < report.mean_latency < 100.0
    assert report.messages > 0
    assert report.bytes > report.messages  # packets cost > 1 byte each
    # The verdict disseminated: other sites distrust the dead one too.
    distrusting = sum(
        1 for site in detector.sites
        if site != dead and not detector.view_at(site).trusts(dead))
    assert distrusting > len(detector.sites) // 2


def test_lossless_run_without_faults_stays_clean():
    simulator, detector = _detector(horizon=300.0)
    detector.start()
    simulator.run()
    report = detector.finalize()
    assert detector.detected_dead() == frozenset()
    assert report.outages == 0
    assert report.detected == 0
    assert report.false_positives == 0
    assert report.false_negatives == 0
    assert report.messages > 0  # the probe loop did run


def test_recovery_acquits_via_incarnation_bump():
    simulator, detector, dead = _run_outage(recover_at=150.0, horizon=600.0)
    # The outage was detected while it lasted...
    report = detector.finalize()
    assert report.detected == 1
    assert report.false_negatives == 0
    # ...and the rejoin (fresher incarnation) cleared the verdict.
    assert detector.detected_dead() == frozenset()
    assert detector.view_at(dead).incarnation >= 1


def test_on_dead_change_fires_on_conviction_and_acquittal():
    simulator, detector = _detector(horizon=600.0)
    dead = (0, 1, 1)
    simulator.fail_node(dead, at=50.0)
    simulator.recover_node(dead, at=150.0)
    snapshots = []
    detector.on_dead_change = lambda det: snapshots.append(
        det.detected_dead())
    detector.start()
    simulator.run()
    assert frozenset([dead]) in snapshots   # the conviction
    assert snapshots[-1] == frozenset()     # the acquittal


def test_finalize_scores_missed_outages_as_false_negatives():
    # A detector that never probes fast enough: the outage outlives the
    # horizon without a conviction.
    simulator = Simulator(2, 3)
    config = SwimConfig(seed="fn", probe_interval=500.0,
                        suspicion_timeout=500.0)
    detector = SwimDetector(simulator, config, horizon=100.0)
    simulator.fail_node((0, 1, 1), at=10.0)
    detector.start()
    simulator.run(until=100.0)  # the books close at the horizon
    report = detector.finalize()
    assert report.outages == 1
    assert report.detected == 0
    assert report.false_negatives == 1
    # finalize() is idempotent: the books close once.
    assert detector.finalize().false_negatives == 1


def test_detection_replays_bit_for_bit_from_the_seed():
    def run():
        simulator, detector, dead = _run_outage(recover_at=150.0,
                                                horizon=600.0)
        report = detector.finalize()
        return (detector.detected_dead(), report.messages, report.bytes,
                tuple(report.latencies), report.false_positives,
                report.false_negatives)

    assert run() == run()


# ----------------------------------------------------------------------
# The resilience stack consuming membership views
# ----------------------------------------------------------------------


def test_detour_policy_with_oracle_membership_matches_builtin_oracle():
    table = CompiledRouteTable.compile(2, 4, workers=1)
    space = table.space
    source, destination = (0, 0, 0, 1), (1, 1, 1, 1)
    dead = space.unpack(table.next_hop_packed(space.pack(source),
                                              space.pack(destination)))

    def run(with_membership):
        simulator = Simulator(2, 4)
        membership = OracleMembership(simulator) if with_membership else None
        simulator.detour_policy = LocalDetourPolicy(
            table, membership=membership)
        simulator.fail_node(dead, at=0.0)
        message = simulator.send(source, destination,
                                 TableDrivenRouter(table=table), at=1.0)
        stats = simulator.run()
        return stats.delivered_count, stats.detoured, tuple(message.trace)

    # The oracle dressed as a membership view is behaviourally identical
    # to the built-in oracle checks.
    assert run(True) == run(False)
    assert run(True)[0] == 1


def test_detour_policy_consults_the_per_site_detected_view():
    table = CompiledRouteTable.compile(2, 3, workers=1)

    class Paranoid:
        """A membership provider whose views trust nobody."""

        def view_at(self, observer):
            return self

        def trusts(self, site):
            return False

    simulator = Simulator(2, 3)
    policy = LocalDetourPolicy(table, membership=Paranoid())
    simulator.detour_policy = policy
    space = table.space
    source, destination = (0, 0, 1), (1, 1, 0)
    dead = space.unpack(table.next_hop_packed(space.pack(source),
                                              space.pack(destination)))
    simulator.fail_node(dead, at=0.0)
    simulator.send(source, destination, TableDrivenRouter(table=table),
                   at=1.0)
    stats = simulator.run()
    # With every candidate distrusted there is no detour to take: the
    # message is dropped (or rerouted), never detoured.
    assert stats.detoured == 0
