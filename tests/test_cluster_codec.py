"""SWIM datagram codec: round-trip + hostile-input fuzz (E25).

Mirrors the E24 FrameDecoder fuzz for the cluster's UDP wire format:
every structurally valid packet survives an encode/decode round trip
bit-for-bit, and *no* datagram — random garbage, truncations, padded
tails, or single-bit corruptions of valid packets — may do anything but
decode cleanly or raise :class:`~repro.exceptions.ProtocolError`.  At
the agent level that contract means malformed gossip can never crash a
node or fabricate a DEAD verdict.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.codec import (MAX_DATAGRAM, decode_packet, encode_packet,
                                 peek_source)
from repro.exceptions import ProtocolError
from repro.network.membership import (ALIVE, DEAD, SUSPECT, SwimConfig,
                                      SwimPacket)

N_NODES = 8

_sites = st.integers(0, N_NODES - 1)
_maybe_sites = st.none() | _sites
_u32 = st.integers(0, 0xFFFFFFFF)
_updates = st.lists(
    st.tuples(st.sampled_from([ALIVE, SUSPECT, DEAD]), _sites, _u32),
    max_size=12,
)
_packets = st.builds(
    SwimPacket,
    kind=st.sampled_from(["ping", "ping-req", "ack", "relayed-ack"]),
    source=_sites,
    probe_id=_u32,
    target=_maybe_sites,
    incarnation=_u32,
    relay_to=_maybe_sites,
    updates=_updates.map(tuple),
)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------


@given(_packets)
@settings(max_examples=200, deadline=None)
def test_roundtrip_bit_for_bit(packet):
    data = encode_packet(packet)
    assert len(data) <= MAX_DATAGRAM
    decoded = decode_packet(data, N_NODES)
    assert decoded == packet
    assert peek_source(data) == packet.source


@given(_packets, st.data())
@settings(max_examples=200, deadline=None)
def test_truncation_and_padding_always_rejected(packet, data):
    """Any length change breaks the exact-size contract — whole-packet
    rejection, never a partial parse."""
    blob = encode_packet(packet)
    cut = data.draw(st.integers(0, len(blob) - 1))
    with pytest.raises(ProtocolError):
        decode_packet(blob[:cut], N_NODES)
    pad = data.draw(st.binary(min_size=1, max_size=9))
    with pytest.raises(ProtocolError):
        decode_packet(blob + pad, N_NODES)


@given(_packets, st.data())
@settings(max_examples=300, deadline=None)
def test_bit_flips_never_escape_protocol_error(packet, data):
    """A corrupted valid packet either still decodes (the flip hit a
    don't-care or stayed in range) or raises ProtocolError — nothing
    else, and never a packet referencing a node outside the cluster."""
    blob = bytearray(encode_packet(packet))
    index = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    blob[index] ^= 1 << bit
    try:
        decoded = decode_packet(bytes(blob), N_NODES)
    except ProtocolError:
        return
    assert 0 <= decoded.source < N_NODES
    for site in (decoded.target, decoded.relay_to):
        assert site is None or 0 <= site < N_NODES
    for state, subject, _ in decoded.updates:
        assert ALIVE <= state <= DEAD
        assert 0 <= subject < N_NODES


@given(st.binary(max_size=MAX_DATAGRAM + 32))
@settings(max_examples=300, deadline=None)
def test_random_garbage_never_escapes_protocol_error(blob):
    try:
        decode_packet(blob, N_NODES)
    except ProtocolError:
        pass
    peek_source(blob)  # must never raise on anything


# ----------------------------------------------------------------------
# Validation specifics
# ----------------------------------------------------------------------


def test_decode_rejects_out_of_cluster_ids():
    packet = SwimPacket(kind="ping", source=5, probe_id=1,
                        updates=((ALIVE, 6, 0),))
    blob = encode_packet(packet)
    # The same bytes against a smaller cluster: both the source and the
    # update subject are now phantom nodes.
    with pytest.raises(ProtocolError):
        decode_packet(blob, 5)


def test_decode_rejects_wrong_magic_version_kind():
    blob = bytearray(encode_packet(
        SwimPacket(kind="ack", source=1, probe_id=7, incarnation=3)))
    wrong_magic = bytearray(blob)
    wrong_magic[0] ^= 0xFF
    with pytest.raises(ProtocolError):
        decode_packet(bytes(wrong_magic), N_NODES)
    wrong_version = bytearray(blob)
    wrong_version[2] = 0x7F
    with pytest.raises(ProtocolError):
        decode_packet(bytes(wrong_version), N_NODES)
    wrong_kind = bytearray(blob)
    wrong_kind[3] = 9
    with pytest.raises(ProtocolError):
        decode_packet(bytes(wrong_kind), N_NODES)


def test_encode_rejects_invalid_fields():
    with pytest.raises(ProtocolError):
        encode_packet(SwimPacket(kind="nack", source=0, probe_id=0))
    with pytest.raises(ProtocolError):
        encode_packet(SwimPacket(kind="ping", source=-1, probe_id=0))
    with pytest.raises(ProtocolError):
        encode_packet(SwimPacket(kind="ping", source=0, probe_id=1 << 32))
    with pytest.raises(ProtocolError):
        encode_packet(SwimPacket(kind="ping", source=0, probe_id=0,
                                 updates=((7, 1, 0),)))
    with pytest.raises(ProtocolError):
        encode_packet(SwimPacket(
            kind="ping", source=0, probe_id=0,
            updates=tuple((ALIVE, 1, 0) for _ in range(256))))


# ----------------------------------------------------------------------
# Agent-level contract: malformed gossip is inert
# ----------------------------------------------------------------------


@given(st.lists(st.binary(max_size=64), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_malformed_gossip_never_crashes_or_convicts(blobs):
    """Feed arbitrary datagrams straight into a live agent's ingress:
    it must neither raise nor mark anyone DEAD on unverified bytes."""
    import asyncio

    from repro.cluster.swim import SwimAgent

    async def _run() -> None:
        agent = SwimAgent(
            0, N_NODES,
            SwimConfig(probe_interval=60.0, probe_timeout=30.0,
                       suspicion_timeout=120.0),
            peers={}, bind=("127.0.0.1", 0))
        await agent.start()
        try:
            for blob in blobs:
                agent._on_datagram(blob)
            assert agent.dead_nodes() == frozenset()
            counters = agent.registry.snapshot()["counters"]
            assert counters.get("swim.convictions", 0) == 0
        finally:
            await agent.close()

    asyncio.run(_run())
