"""Tests for the lazy sharded route tables (core/shards.py).

Every routed answer is checked against the full
:class:`~repro.core.tables.CompiledRouteTable` — the shard tier's whole
contract is "same bytes, a slice at a time, under a byte budget".
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.packed import PackedSpace
from repro.core.shards import (
    RouteShard,
    ShardedRouteTable,
    default_rows_per_shard,
)
from repro.core.tables import CompiledRouteTable
from repro.exceptions import InvalidParameterError, ServiceError

D, K = 2, 7
N = D**K


@pytest.fixture(scope="module")
def full_table():
    return CompiledRouteTable.compile(D, K, workers=1)


# ----------------------------------------------------------------------
# RouteShard: compile, lookups, file format
# ----------------------------------------------------------------------


def test_shard_matches_full_table(full_table):
    shard = RouteShard.compile(D, K, 32, 48)
    for dest in range(32, 48):
        for source in (0, 5, N - 1):
            assert shard.distance_packed(source, dest) == \
                full_table.distance_packed(source, dest)
            assert shard.path_actions(source, dest) == \
                full_table.path_actions(source, dest)
    assert shard.covers(32) and shard.covers(47)
    assert not shard.covers(48) and not shard.covers(31)


def test_shard_save_load_roundtrip(tmp_path, full_table):
    shard = RouteShard.compile(D, K, 0, 16)
    path = str(tmp_path / "s.dbrs")
    written = shard.save(path)
    assert written == os.path.getsize(path)
    loaded = RouteShard.load(path)
    try:
        assert bytes(loaded.distances) == bytes(shard.distances)
        assert bytes(loaded.actions) == bytes(shard.actions)
        assert loaded.distance_packed(3, 7) == \
            full_table.distance_packed(3, 7)
    finally:
        loaded.close()


def test_shard_load_rejects_truncated_corrupt_wrong_magic(tmp_path):
    shard = RouteShard.compile(D, K, 0, 8)
    path = str(tmp_path / "s.dbrs")
    shard.save(path)
    with open(path, "rb") as handle:
        payload = bytearray(handle.read())

    truncated = tmp_path / "trunc.dbrs"
    truncated.write_bytes(payload[:-17])
    with pytest.raises(InvalidParameterError):
        RouteShard.load(str(truncated))

    wrong_magic = tmp_path / "magic.dbrs"
    swapped = bytearray(payload)
    swapped[:5] = b"DBRT\x01"  # a full-table magic is not a shard
    wrong_magic.write_bytes(swapped)
    with pytest.raises(InvalidParameterError):
        RouteShard.load(str(wrong_magic))

    corrupt = tmp_path / "corrupt.dbrs"
    broken = bytearray(payload)
    broken[5] = 3  # d: 2 -> 3; order in the header no longer matches
    corrupt.write_bytes(broken)
    with pytest.raises(InvalidParameterError):
        RouteShard.load(str(corrupt))

    stub = tmp_path / "stub.dbrs"
    stub.write_bytes(b"DBRS\x01")
    with pytest.raises(InvalidParameterError):
        RouteShard.load(str(stub))


def test_shard_rejects_bad_geometry():
    with pytest.raises(InvalidParameterError):
        RouteShard(D, K, False, 8, 8, b"", b"")  # empty range
    with pytest.raises(InvalidParameterError):
        RouteShard(D, K, False, 0, 4, b"x", b"x")  # wrong buffer size


# ----------------------------------------------------------------------
# ShardedRouteTable: correctness, LRU budget, threshold, persistence
# ----------------------------------------------------------------------


def test_synchronous_manager_answers_everything(full_table):
    manager = ShardedRouteTable(D, K, byte_budget=8 * 2 * 8 * N,
                                rows_per_shard=8, synchronous=True)
    rng = random.Random(0x5EED)
    for _ in range(200):
        source, dest = rng.randrange(N), rng.randrange(N)
        distance, actions = manager.resolve_packed(source, dest,
                                                   want_path=True)
        assert distance == full_table.distance_packed(source, dest)
        assert actions == full_table.path_actions(source, dest)
    stats = manager.stats()
    assert stats["resident_bytes"] <= manager.byte_budget
    assert stats["hits"] + stats["misses"] == 200


def test_lru_eviction_keeps_budget_and_recompiles(full_table):
    # Budget of exactly two shards: touching a third must evict the
    # least recently used, and re-touching the victim recompiles it.
    manager = ShardedRouteTable(D, K, byte_budget=2 * 2 * 16 * N,
                                rows_per_shard=16, synchronous=True)
    manager.resolve_packed(0, 0, False)    # group 0
    manager.resolve_packed(0, 16, False)   # group 1
    manager.resolve_packed(0, 32, False)   # group 2 -> evicts group 0
    stats = manager.stats()
    assert stats["evictions"] == 1
    assert stats["resident_shards"] == 2
    distance, _ = manager.resolve_packed(9, 3, False)  # group 0 again
    assert distance == full_table.distance_packed(9, 3)
    assert manager.stats()["compiled"] == 4  # recompiled, not cached


def test_eviction_mid_query_is_transparent(full_table):
    # Grab a shard reference, evict it by touching other groups, then
    # keep reading through the old reference AND re-resolve the same
    # destination: both must stay correct (re-resolve recompiles).
    manager = ShardedRouteTable(D, K, byte_budget=2 * 2 * 16 * N,
                                rows_per_shard=16, synchronous=True)
    shard = manager.shard_for(5)
    assert shard is not None
    manager.resolve_packed(0, 16, False)
    manager.resolve_packed(0, 32, False)
    manager.resolve_packed(0, 48, False)
    assert manager.stats()["evictions"] >= 1
    assert manager.group_of(5) not in [
        manager.group_of(d) for d in (16, 32, 48)]
    # The evicted reference still reads valid memory, mid-query.
    assert shard.distance_packed(77, 5) == \
        full_table.distance_packed(77, 5)
    assert shard.path_actions(77, 5) == full_table.path_actions(77, 5)
    # And the manager transparently rebuilds on the next resolve.
    distance, actions = manager.resolve_packed(77, 5, want_path=True)
    assert distance == full_table.distance_packed(77, 5)
    assert actions == full_table.path_actions(77, 5)


def test_background_threshold_and_drain(full_table):
    manager = ShardedRouteTable(D, K, rows_per_shard=16,
                                compile_threshold=3)
    try:
        # Below the threshold: cold answers, nothing scheduled.
        assert manager.resolve_packed(1, 40, False) is None
        assert manager.resolve_packed(2, 41, False) is None
        assert manager.stats()["pending"] == 0
        # Third request for the same group schedules the compile.
        assert manager.resolve_packed(3, 42, False) is None
        assert manager.drain(timeout=30.0)
        answer = manager.resolve_packed(1, 40, False)
        assert answer is not None
        assert answer[0] == full_table.distance_packed(1, 40)
        stats = manager.stats()
        assert stats["compiled"] == 1 and stats["hits"] == 1
    finally:
        manager.close()


def test_cache_dir_persists_and_survives_corruption(tmp_path, full_table):
    cache = str(tmp_path / "shards")
    manager = ShardedRouteTable(D, K, rows_per_shard=16, cache_dir=cache,
                                synchronous=True)
    manager.resolve_packed(0, 20, False)
    path = manager.shard_path(manager.group_of(20))
    assert os.path.exists(path)

    # A fresh manager mmap-loads instead of recompiling.
    reopened = ShardedRouteTable(D, K, rows_per_shard=16, cache_dir=cache,
                                 synchronous=True)
    distance, _ = reopened.resolve_packed(0, 20, False)
    assert distance == full_table.distance_packed(0, 20)
    assert reopened.stats()["loaded"] == 1
    assert reopened.stats()["compiled"] == 0

    # Corrupt the cache file: deleted and rebuilt, not served.
    with open(path, "r+b") as handle:
        handle.truncate(64)
    rebuilt = ShardedRouteTable(D, K, rows_per_shard=16, cache_dir=cache,
                                synchronous=True)
    distance, _ = rebuilt.resolve_packed(0, 20, False)
    assert distance == full_table.distance_packed(0, 20)
    assert rebuilt.stats()["compiled"] == 1

    # A torn write — the file replaced by a prefix of a *different*
    # valid shard image, as a non-atomic writer killed mid-write would
    # leave — is likewise detected and rebuilt, not served.
    with open(path, "rb") as handle:
        image = handle.read()
    with open(path, "wb") as handle:
        handle.write(image[: len(image) - len(image) // 3])
    torn = ShardedRouteTable(D, K, rows_per_shard=16, cache_dir=cache,
                             synchronous=True)
    distance, _ = torn.resolve_packed(0, 20, False)
    assert distance == full_table.distance_packed(0, 20)
    assert torn.stats()["compiled"] == 1
    assert torn.stats()["loaded"] == 0

    # A flipped header byte (bit rot, not truncation) fails the v2
    # header checksum and rebuilds too.
    with open(path, "r+b") as handle:
        handle.seek(6)
        byte = handle.read(1)
        handle.seek(6)
        handle.write(bytes([byte[0] ^ 0xFF]))
    rotten = ShardedRouteTable(D, K, rows_per_shard=16, cache_dir=cache,
                               synchronous=True)
    distance, _ = rotten.resolve_packed(0, 20, False)
    assert distance == full_table.distance_packed(0, 20)
    assert rotten.stats()["compiled"] == 1


def test_shard_save_is_atomic_and_checksummed(tmp_path):
    shard = RouteShard.compile(D, K, 0, 8)
    path = str(tmp_path / "s.dbrs")
    shard.save(path)
    # No temporary droppings survive a successful save.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["s.dbrs"]
    with open(path, "rb") as handle:
        payload = bytearray(handle.read())
    # Body corruption is caught by the checksum on the full-read path.
    payload[-1] ^= 0xFF
    bad = tmp_path / "bad.dbrs"
    bad.write_bytes(payload)
    with pytest.raises(InvalidParameterError):
        RouteShard.load(str(bad), use_mmap=False)


def test_shard_load_accepts_legacy_v1_files(tmp_path):
    import struct as _struct

    shard = RouteShard.compile(D, K, 0, 8)
    legacy = str(tmp_path / "legacy.dbrs")
    with open(legacy, "wb") as handle:
        handle.write(b"DBRS\x01")
        handle.write(_struct.pack("<BBBxQQQ", shard.d, shard.k,
                                  int(shard.directed), shard.order,
                                  shard.start, shard.stop))
        handle.write(bytes(shard.distances))
        handle.write(bytes(shard.actions))
    loaded = RouteShard.load(legacy)
    try:
        assert bytes(loaded.distances) == bytes(shard.distances)
        assert bytes(loaded.actions) == bytes(shard.actions)
    finally:
        loaded.close()


def test_manager_parameter_validation():
    with pytest.raises(InvalidParameterError):
        ShardedRouteTable(D, K, rows_per_shard=12)  # not a power of 2
    with pytest.raises(InvalidParameterError):
        ShardedRouteTable(D, K, rows_per_shard=16, byte_budget=100)
    with pytest.raises(InvalidParameterError):
        ShardedRouteTable(D, K, compile_threshold=0)
    manager = ShardedRouteTable(D, K, synchronous=True)
    with pytest.raises(InvalidParameterError):
        manager.group_of(N)


def test_default_rows_per_shard_geometry():
    # Always a power of d, never more than the order, shard fits budget.
    for d, k in [(2, 7), (2, 20), (3, 5)]:
        rows = default_rows_per_shard(d, k)
        order = d**k
        assert order % rows == 0
        while rows > 1:
            assert rows % d == 0
            rows //= d
    # The documented DG(2,20) arithmetic: 8 MB shards, 4 destinations.
    assert default_rows_per_shard(2, 20) == 4


# ----------------------------------------------------------------------
# Engine integration: shard tier between table and planner
# ----------------------------------------------------------------------


def test_engine_shard_tier_and_counters(full_table):
    from repro.service.engine import RouteQueryEngine

    manager = ShardedRouteTable(D, K, rows_per_shard=16, synchronous=True)
    engine = RouteQueryEngine(D, K, shards=manager)
    space = PackedSpace(D, K)
    rng = random.Random(0xCAFE)
    for _ in range(50):
        x = space.unpack(rng.randrange(N))
        y = space.unpack(rng.randrange(N))
        distance, path = engine.resolve(x, y, directed=False,
                                        want_path=True)
        assert distance == full_table.distance(x, y)
        assert len(path) == distance
    counters = engine.stats()["counters"]
    assert counters["engine.shard_hits"] == 50  # synchronous: all hits
    assert counters["engine.shards_attached"] == 1
    assert counters["shards.resident_shards"] > 0
    assert "shards.resident_bytes" in counters

    # Distance-only batch flushes ride the same tier.
    y = space.unpack(3)
    sources = [space.unpack(rng.randrange(N)) for _ in range(8)]
    distances = engine.resolve_distances(y, sources, directed=False)
    assert distances == [full_table.distance(s, y) for s in sources]


def test_engine_shard_fallback_to_planner(full_table):
    from repro.service.engine import RouteQueryEngine

    manager = ShardedRouteTable(D, K, rows_per_shard=16,
                                compile_threshold=1000)  # never compiles
    try:
        engine = RouteQueryEngine(D, K, shards=manager)
        space = PackedSpace(D, K)
        x, y = space.unpack(9), space.unpack(100)
        distance, path = engine.resolve(x, y, directed=False,
                                        want_path=True)
        assert distance == full_table.distance(x, y)
        counters = engine.stats()["counters"]
        assert counters["engine.shard_fallbacks"] == 1
        assert counters["engine.planned"] == 1
    finally:
        manager.close()


def test_engine_rejects_mismatched_shards():
    from repro.service.engine import RouteQueryEngine

    manager = ShardedRouteTable(2, 5, synchronous=True)
    with pytest.raises(ServiceError):
        RouteQueryEngine(2, 6, shards=manager)
