"""Hypothesis fuzzing across module boundaries: codec and simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import Direction, RoutingStep
from repro.exceptions import WirePathError
from repro.network.message import (
    ControlCode,
    Message,
    decode_message,
    decode_path,
    encode_message,
)
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator

WORDS = st.integers(2, 5).flatmap(
    lambda d: st.integers(1, 8).flatmap(
        lambda k: st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple)
    )
)

STEPS = st.lists(
    st.builds(
        RoutingStep,
        st.sampled_from([Direction.LEFT, Direction.RIGHT]),
        st.one_of(st.none(), st.integers(0, 200)),
    ),
    max_size=20,
)

PAYLOADS = st.one_of(st.none(), st.binary(max_size=64), st.text(max_size=32))


@given(
    st.sampled_from(list(ControlCode)),
    WORDS,
    STEPS,
    PAYLOADS,
)
@settings(max_examples=300)
def test_message_codec_roundtrip_fuzz(control, word, steps, payload):
    message = Message(control, word, word, list(steps), payload)
    blob = encode_message(message)
    got_control, got_src, got_dst, got_path, got_body = decode_message(blob)
    assert got_control == control
    assert got_src == word and got_dst == word
    assert got_path == steps
    if payload is None:
        assert got_body == b""
    elif isinstance(payload, bytes):
        assert got_body == payload
    else:
        assert got_body.decode("utf-8") == payload


@given(st.binary(max_size=64))
@settings(max_examples=300)
def test_decoder_never_crashes_uncontrolled(blob):
    """Arbitrary bytes either decode or raise WirePathError/ValueError."""
    try:
        decode_message(blob)
    except (WirePathError, ValueError):
        pass


@given(st.binary(max_size=40))
@settings(max_examples=200)
def test_path_decoder_is_total(blob):
    try:
        steps = decode_path(blob)
    except WirePathError:
        return
    assert all(isinstance(step, RoutingStep) for step in steps)


PAIR_LISTS = st.integers(2, 3).flatmap(
    lambda d: st.integers(2, 4).flatmap(
        lambda k: st.tuples(
            st.just((d, k)),
            st.lists(
                st.tuples(
                    st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
                    st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
                ),
                min_size=1,
                max_size=15,
            ),
        )
    )
)


@given(PAIR_LISTS)
@settings(max_examples=100, deadline=None)
def test_simulator_invariants_under_random_workloads(args):
    (d, k), pairs = args
    sim = Simulator(d, k)
    router = BidirectionalOptimalRouter()
    sent = 0
    for index, (x, y) in enumerate(pairs):
        sim.send(x, y, router, at=float(index % 5))
        sent += 1
    stats = sim.run()
    # Conservation.
    assert stats.delivered_count + stats.dropped_count == sent
    assert stats.dropped_count == 0  # no failures injected
    graph_d = d
    for message in stats.delivered:
        # Trace starts at the source, ends at the destination.
        assert message.trace[0] == message.source
        assert message.trace[-1] == message.destination
        # Every consecutive trace pair is a single de Bruijn shift.
        for u, v in zip(message.trace, message.trace[1:]):
            assert v[: k - 1] == u[1:] or v[1:] == u[: k - 1], (u, v)
        # Latency at least hops (unit link latency) and delivery after injection.
        assert message.latency is not None
        assert message.latency >= message.hop_count - 1e-9
        assert message.delivered_at >= message.injected_at
    # Link loads account exactly for the hops taken.
    assert sum(stats.link_loads.values()) == sum(m.hop_count for m in stats.delivered)
