"""Tests for the Samatham–Pradhan embeddings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import apply_path
from repro.exceptions import InvalidParameterError
from repro.graphs.debruijn import undirected_graph
from repro.graphs.embeddings import (
    embed_complete_tree,
    embed_linear_array,
    embed_ring,
    emulate_shuffle_exchange,
    exchange,
    exchange_route,
    shuffle,
    shuffle_route,
    tree_parent_edge,
)


# ----------------------------------------------------------------------
# Ring / linear array
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2), (3, 3)])
def test_ring_embedding_has_dilation_one(d, k):
    g = undirected_graph(d, k)
    ring = embed_ring(d, k)
    assert len(ring) == d**k and len(set(ring)) == d**k
    for u, v in zip(ring, ring[1:] + ring[:1]):
        # Dilation 1 means consecutive ring nodes are graph neighbors
        # (or coincide via a loop edge at constant words — which cannot
        # happen on a Hamiltonian cycle since vertices are distinct).
        assert g.has_edge(u, v)


def test_linear_array_is_the_cut_ring():
    array = embed_linear_array(2, 3)
    g = undirected_graph(2, 3)
    for u, v in zip(array, array[1:]):
        assert g.has_edge(u, v)


# ----------------------------------------------------------------------
# Complete trees
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k,arity", [(2, 3, 2), (2, 4, 2), (3, 3, 2), (3, 3, 3), (3, 4, 2)])
def test_tree_embedding_is_injective_with_dilation_one(d, k, arity):
    g = undirected_graph(d, k)
    tree = embed_complete_tree(d, k, arity)
    expected_size = sum(arity**j for j in range(k))
    assert len(tree) == expected_size
    assert len(set(tree.values())) == expected_size  # injective
    for path in tree:
        if path:
            parent_word, child_word = tree_parent_edge(tree, path)
            assert g.has_edge(parent_word, child_word)


def test_tree_root_and_leaves_shape():
    tree = embed_complete_tree(2, 3)
    assert tree[()] == (0, 0, 1)
    # Depth k-1 nodes spell 1 followed by their path.
    assert tree[(0, 1)] == (1, 0, 1)
    assert tree[(1, 1)] == (1, 1, 1)


def test_tree_rejects_excess_arity():
    with pytest.raises(InvalidParameterError):
        embed_complete_tree(2, 3, arity=3)


def test_tree_parent_edge_rejects_root():
    tree = embed_complete_tree(2, 3)
    with pytest.raises(InvalidParameterError):
        tree_parent_edge(tree, ())


# ----------------------------------------------------------------------
# Shuffle-exchange emulation
# ----------------------------------------------------------------------


def test_shuffle_is_cyclic_rotation():
    assert shuffle((0, 1, 1)) == (1, 1, 0)


def test_exchange_flips_last_bit():
    assert exchange((0, 1, 1)) == (0, 1, 0)


def test_exchange_requires_binary():
    with pytest.raises(InvalidParameterError):
        exchange((0, 1, 2), d=3)


def test_shuffle_route_is_one_de_bruijn_hop():
    word = (0, 1, 1)
    route = shuffle_route(word)
    assert len(route) == 1
    assert apply_path(word, route, 2) == shuffle(word)


@given(st.lists(st.integers(0, 1), min_size=2, max_size=10).map(tuple))
@settings(max_examples=200)
def test_exchange_route_is_two_hops_and_correct(word):
    route = exchange_route(word)
    assert len(route) == 2
    for fill in (0, 1):
        assert apply_path(word, route, 2, wildcard=fill) == exchange(word)


@given(
    st.lists(st.integers(0, 1), min_size=2, max_size=8).map(tuple),
    st.text(alphabet="se", min_size=0, max_size=12),
)
@settings(max_examples=200)
def test_emulation_tracks_the_shuffle_exchange_machine(word, ops):
    routes = emulate_shuffle_exchange(word, ops)
    assert len(routes) == len(ops)
    current = word
    for op, route in zip(ops, routes):
        expected = shuffle(current) if op == "s" else exchange(current)
        assert apply_path(current, route, 2, wildcard=0) == expected
        current = expected
    # Total slowdown is at most 2 hops per SE move.
    assert sum(len(r) for r in routes) <= 2 * len(ops)


def test_emulation_rejects_unknown_ops():
    with pytest.raises(InvalidParameterError):
        emulate_shuffle_exchange((0, 1), "sx")
