"""Tests for push gossip on the de Bruijn network."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import InvalidParameterError
from repro.network.gossip import GossipResult, mean_rounds_to_cover, push_gossip


def test_single_run_informs_everyone():
    result = push_gossip(2, 4, (0,) * 4, rng=random.Random(1))
    assert result.coverage == 1.0
    assert result.informed == result.population == 16
    assert result.rounds >= math.ceil(math.log2(16))  # doubling bound
    assert result.messages >= result.informed - 1


def test_coverage_by_round_is_monotone():
    result = push_gossip(2, 5, (0,) * 5, rng=random.Random(2))
    coverage = result.coverage_by_round
    assert coverage[0] == 1
    assert list(coverage) == sorted(coverage)
    assert coverage[-1] == result.population


def test_rounds_lower_bound_doubling():
    # At most doubling per round: rounds >= log2(N).
    for k in (3, 4, 5, 6):
        result = push_gossip(2, k, (0,) * k, rng=random.Random(k))
        assert result.rounds >= math.ceil(math.log2(2**k))


def test_logarithmic_scaling_in_expectation():
    small = mean_rounds_to_cover(2, 4, trials=10, seed=3)  # 16 sites
    large = mean_rounds_to_cover(2, 7, trials=10, seed=3)  # 128 sites
    # 8x the population should cost far less than 8x the rounds.
    assert large < 3 * small


def test_gossip_with_failures_covers_surviving_component():
    failed = [(0, 0, 0, 1), (1, 1, 1, 0)]
    result = push_gossip(2, 4, (0,) * 4, rng=random.Random(5), failed=failed)
    assert result.population == 14
    assert result.coverage == 1.0


def test_gossip_with_isolating_failures_targets_component_only():
    # Killing 001 and 100 isolates 000: its component is itself.
    failed = [(0, 0, 1), (1, 0, 0)]
    result = push_gossip(2, 3, (0, 0, 0), rng=random.Random(6), failed=failed)
    assert result.population == 1
    assert result.coverage == 1.0
    assert result.rounds == 0


def test_dead_source_rejected():
    with pytest.raises(InvalidParameterError):
        push_gossip(2, 3, (0, 0, 0), failed=[(0, 0, 0)])


def test_round_limit_caps_runaway():
    result = push_gossip(2, 6, (0,) * 6, rng=random.Random(9), max_rounds=2)
    assert result.rounds == 2
    assert result.coverage < 1.0


def test_deterministic_with_seed():
    a = push_gossip(2, 5, (0,) * 5, rng=random.Random(11))
    b = push_gossip(2, 5, (0,) * 5, rng=random.Random(11))
    assert a == b


def test_result_dataclass_fields():
    result = GossipResult(rounds=3, messages=10, informed=8, population=8,
                          coverage_by_round=(1, 2, 4, 8))
    assert result.coverage == 1.0
