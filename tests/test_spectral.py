"""Tests for the spectral/walk-counting module (A^k = J)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spectral import (
    adjacency_matrix,
    property1_in_matrix_form,
    spectrum,
    verify_walk_identity,
    walk_count_matrix,
)
from repro.exceptions import InvalidParameterError

GRID = [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]


@pytest.mark.parametrize("d,k", GRID)
def test_adjacency_rows_sum_to_d(d, k):
    matrix = adjacency_matrix(d, k)
    assert (matrix.sum(axis=1) == d).all()
    assert (matrix.sum(axis=0) == d).all()  # in-degree d as well


def test_adjacency_loops_at_constant_words():
    matrix = adjacency_matrix(2, 3)
    assert matrix[0, 0] == 1  # 000 -> 000
    assert matrix[7, 7] == 1  # 111 -> 111
    assert matrix[1, 1] == 0


@pytest.mark.parametrize("d,k", GRID)
def test_a_to_the_k_is_all_ones(d, k):
    assert verify_walk_identity(d, k)


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2)])
def test_beyond_diameter_walk_counts_are_uniform(d, k):
    for extra in (1, 2):
        power = walk_count_matrix(d, k, k + extra)
        assert (power == d**extra).all()


@pytest.mark.parametrize("d,k", GRID)
def test_spectrum_is_d_plus_zeros(d, k):
    eigenvalues = spectrum(d, k)
    assert eigenvalues[0] == pytest.approx(d, abs=1e-8)
    # A − its rank-one part is nilpotent; numerically, eigenvalues of a
    # nilpotent matrix perturb like machine_eps**(1/k), so the tolerance
    # must be generous (1e-16**(1/4) ≈ 1e-4; give 100x headroom).
    assert np.abs(eigenvalues[1:]).max() < 0.05


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2), (3, 3)])
def test_property1_matrix_form(d, k):
    assert property1_in_matrix_form(d, k)


def test_exact_distance_walk_nonmonotonicity_exists():
    # A pair with D(x, y) = s that has NO walk of some length t in (s, k):
    # documents why property1_in_matrix_form uses an argmin, not a
    # threshold.  x = 010, y = 101: D = 1, but no walk of length 2
    # (x_3 != y_1 would need 0 = ... check via the walk matrix).
    walks2 = walk_count_matrix(2, 3, 2)
    from repro.analysis.exact import directed_distance_matrix

    distances = directed_distance_matrix(2, 3)
    mask = (distances < 2) & (walks2 == 0)
    assert mask.any()


def test_walk_matrix_t0_is_identity():
    assert (walk_count_matrix(2, 3, 0) == np.eye(8, dtype=np.int64)).all()


def test_guards():
    with pytest.raises(InvalidParameterError):
        adjacency_matrix(2, 20)
    with pytest.raises(InvalidParameterError):
        walk_count_matrix(2, 3, -1)
