"""Tests for the wire-level chaos proxy and the hardened client (E24)."""

from __future__ import annotations

import asyncio
import random
import threading
import time
from contextlib import contextmanager

import pytest

from repro.exceptions import ServiceError
from repro.service.chaosproxy import ChaosProxy, ChaosProxyThread, FaultPlan
from repro.service.client import (
    CLIENT_DEADLINE_MESSAGE,
    BreakerConfig,
    CircuitBreaker,
    RetryPolicy,
    RobustRouteClient,
    RouteServiceClient,
    run_burst,
    run_robust_burst,
)
from repro.service.engine import RouteQueryEngine
from repro.service.metrics import MetricsRegistry
from repro.service.server import RouteQueryServer
from tests.test_service import _pairs


def run(coro):
    return asyncio.run(coro)


@contextmanager
def _server_thread(d=2, k=6):
    """A live server on a background loop, for sync-caller tests."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = RouteQueryServer(RouteQueryEngine(d, k))
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(5)
        loop.close()


# ----------------------------------------------------------------------
# FaultPlan: validation + seeded replayability
# ----------------------------------------------------------------------


def test_fault_plan_validates_inputs():
    with pytest.raises(ValueError):
        FaultPlan(reset_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(corrupt_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(latency_ms=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(directions="sideways")
    with pytest.raises(ValueError):
        FaultPlan(reset_after_bytes=(4096, 64))


def test_fault_plan_fates_replay_from_seed():
    """The same seed draws the same per-connection fates, bit for bit."""
    plan = FaultPlan(seed="replay", reset_rate=0.5, trickle_rate=0.3)
    again = FaultPlan(seed="replay", reset_rate=0.5, trickle_rate=0.3)
    other = FaultPlan(seed="other", reset_rate=0.5, trickle_rate=0.3)

    def fates(p):
        out = []
        for i in range(64):
            c2s = p.fate(i, "c2s")
            s2c = p.fate(i, "s2c")
            out.append((c2s.reset_after, c2s.trickle,
                        s2c.reset_after, s2c.trickle))
        return out

    assert fates(plan) == fates(again)
    assert fates(plan) != fates(other)
    # Directions draw from independent RNG streams.
    assert any((a, b) != (c, d) for a, b, c, d in fates(plan))


def test_fault_plan_direction_scoping():
    plan = FaultPlan(directions="c2s", corrupt_rate=1.0)
    assert plan.applies_to("c2s") and not plan.applies_to("s2c")
    # A fate drawn for the excluded direction carries no faults.
    assert FaultPlan(directions="c2s", reset_rate=1.0).fate(
        0, "s2c").reset_after is None
    both = FaultPlan(directions="both")
    assert both.applies_to("c2s") and both.applies_to("s2c")


# ----------------------------------------------------------------------
# Proxy pass-through and per-fault behaviour (live sockets)
# ----------------------------------------------------------------------


def test_proxy_passthrough_is_transparent():
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with ChaosProxy("127.0.0.1", server.port,
                                  FaultPlan(seed="clean")) as proxy:
                async with RouteServiceClient("127.0.0.1", proxy.port,
                                              d=2) as client:
                    outcome = await client.query_many(_pairs(2, 6, 40, 1))
                assert outcome.ok_count == 40
                counters = proxy.snapshot()["counters"]
                assert counters["proxy.connections"] == 1
                assert counters["proxy.bytes_c2s"] > 0
                assert counters["proxy.bytes_s2c"] > 0
                assert counters.get("proxy.resets_injected", 0) == 0
        return True

    assert run(scenario())


def test_proxy_latency_fault_slows_but_loses_nothing():
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with ChaosProxy(
                "127.0.0.1", server.port,
                FaultPlan(seed="slow", latency_ms=20.0),
            ) as proxy:
                async with RouteServiceClient("127.0.0.1", proxy.port,
                                              d=2) as client:
                    start = time.perf_counter()
                    outcome = await client.query_many(_pairs(2, 6, 10, 2))
                    elapsed = time.perf_counter() - start
                assert outcome.ok_count == 10
                # Each round trip crosses the proxy at least twice.
                assert elapsed >= 0.04
                counters = proxy.snapshot()["counters"]
                assert counters["proxy.delays_injected"] >= 2
        return True

    assert run(scenario())


def test_proxy_reset_fault_robust_client_survives():
    """Every connection is fated to die; the burst still completes."""
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with ChaosProxy(
                "127.0.0.1", server.port,
                FaultPlan(seed="reset", reset_rate=1.0),
            ) as proxy:
                policy = RetryPolicy(retries=8, deadline=30.0,
                                     seed="t-reset")
                async with RobustRouteClient(
                    "127.0.0.1", proxy.port, d=2, policy=policy,
                ) as client:
                    outcome = await client.query_many(
                        _pairs(2, 6, 400, 3), want_path=False)
                assert outcome.lost_count == 0
                assert outcome.ok_count == 400
                counters = proxy.snapshot()["counters"]
                assert counters["proxy.resets_injected"] >= 1
        return True

    assert run(scenario())


def test_proxy_reset_fault_kills_naive_client():
    """The contrast: no reconnect budget makes the same wire fatal."""
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with ChaosProxy(
                "127.0.0.1", server.port,
                FaultPlan(seed="reset", reset_rate=1.0),
            ) as proxy:
                async with RouteServiceClient("127.0.0.1", proxy.port,
                                              d=2) as client:
                    with pytest.raises((ServiceError, ConnectionError,
                                        OSError)):
                        await client.query_many(
                            _pairs(2, 6, 400, 3), want_path=False)
        return True

    assert run(scenario())


def test_proxy_corruption_fault_robust_client_survives():
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with ChaosProxy(
                "127.0.0.1", server.port,
                FaultPlan(seed="garble", corrupt_rate=0.5,
                          truncate_rate=0.2),
            ) as proxy:
                policy = RetryPolicy(retries=10, deadline=30.0,
                                     attempt_timeout=2.0, seed="t-garble")
                async with RobustRouteClient(
                    "127.0.0.1", proxy.port, d=2, policy=policy,
                ) as client:
                    outcome = await client.query_many(
                        _pairs(2, 6, 100, 4), want_path=False)
                assert outcome.lost_count == 0
                counters = proxy.snapshot()["counters"]
                assert (counters.get("proxy.bytes_corrupted", 0)
                        + counters.get("proxy.truncations", 0)) >= 1
        return True

    assert run(scenario())


def test_partition_opens_breaker_and_heals_within_probe():
    """Black hole -> breaker opens; heal -> recovery within one probe."""
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with ChaosProxy("127.0.0.1", server.port,
                                  FaultPlan(seed="part")) as proxy:
                policy = RetryPolicy(retries=20, deadline=1.5,
                                     attempt_timeout=0.25,
                                     backoff_base=0.02, backoff_max=0.1,
                                     seed="t-part")
                breaker = BreakerConfig(failure_threshold=3,
                                        probe_interval=0.5)
                registry = MetricsRegistry()
                async with RobustRouteClient(
                    "127.0.0.1", proxy.port, d=2, policy=policy,
                    breaker=breaker, registry=registry,
                ) as client:
                    out = await client.query_many(_pairs(2, 6, 20, 5),
                                                  want_path=False)
                    assert out.lost_count == 0

                    proxy.partition()
                    out = await client.query_many(_pairs(2, 6, 20, 6),
                                                  want_path=False)
                    assert out.lost_count == 20
                    assert all(r.error_message == CLIENT_DEADLINE_MESSAGE
                               for r in out.replies)
                    counters = registry.snapshot()["counters"]
                    assert counters.get("client.breaker_open", 0) >= 1
                    assert counters.get("client.deadline_exceeded", 0) == 20

                    proxy.heal()
                    healed_at = time.perf_counter()
                    out = await client.query_many(_pairs(2, 6, 20, 7),
                                                  want_path=False)
                    recovery = time.perf_counter() - healed_at
                    assert out.lost_count == 0
                    # Bounded by the probe interval plus a little slack.
                    assert recovery <= 0.5 + 0.5
                counters = proxy.snapshot()["counters"]
                assert counters["proxy.partitions"] == 1
                assert counters["proxy.heals"] == 1
        return True

    assert run(scenario())


def test_proxy_thread_wraps_sync_callers():
    with _server_thread() as server:
        with ChaosProxyThread("127.0.0.1", server.port,
                              FaultPlan(seed="thread")) as proxy:
            outcome = run_burst("127.0.0.1", proxy.port,
                                _pairs(2, 6, 30, 8), 2)
            assert outcome.ok_count == 30
            assert proxy.snapshot()["counters"]["proxy.connections"] >= 1


# ----------------------------------------------------------------------
# RetryPolicy / CircuitBreaker units
# ----------------------------------------------------------------------


def test_retry_policy_validates_and_backoff_is_seeded():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)

    policy = RetryPolicy(backoff_base=0.1, backoff_max=1.0)
    a = [policy.backoff(n, random.Random("x")) for n in range(1, 6)]
    b = [policy.backoff(n, random.Random("x")) for n in range(1, 6)]
    assert a == b  # seeded jitter replays
    # Exponential envelope with jitter in [0.5, 1.0) of nominal.
    for attempt, delay in enumerate(a, start=1):
        nominal = min(0.1 * (2 ** (attempt - 1)), 1.0)
        assert 0.5 * nominal <= delay <= nominal


def test_circuit_breaker_state_machine():
    clock = [0.0]
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=2, probe_interval=1.0),
        MetricsRegistry(), now=lambda: clock[0])
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.allow()  # one failure: still closed
    breaker.record_failure()
    assert not breaker.allow()  # threshold hit: open
    clock[0] = 0.5
    assert not breaker.allow()  # still inside the probe interval
    clock[0] = 1.1
    assert breaker.allow()  # half-open: exactly one probe
    assert not breaker.allow()  # second caller is still short-circuited
    breaker.record_success()
    assert breaker.allow()  # probe succeeded: closed again
    breaker.record_failure()
    breaker.record_failure()  # open again at t=1.1
    clock[0] = 2.5
    assert breaker.allow()  # half-open probe
    breaker.record_failure()  # probe failed: re-open at t=2.5
    assert not breaker.allow()


def test_breaker_open_counter_fires_once_per_trip():
    registry = MetricsRegistry()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=1, probe_interval=10.0),
        registry, now=lambda: 0.0)
    breaker.record_failure()
    breaker.record_failure()  # already open: no second count
    assert registry.snapshot()["counters"]["client.breaker_open"] == 1


def test_robust_client_counters_surface_in_registry():
    """Satellite: client.* counters land in the shared registry."""
    async def scenario():
        async with RouteQueryServer(RouteQueryEngine(2, 6)) as server:
            async with ChaosProxy(
                "127.0.0.1", server.port,
                FaultPlan(seed="count", reset_rate=1.0),
            ) as proxy:
                registry = MetricsRegistry()
                policy = RetryPolicy(retries=6, deadline=20.0,
                                     seed="t-count")
                async with RobustRouteClient(
                    "127.0.0.1", proxy.port, d=2, policy=policy,
                    registry=registry,
                ) as client:
                    outcome = await client.query_many(
                        _pairs(2, 6, 200, 9), want_path=False)
                assert outcome.lost_count == 0
                assert proxy.snapshot()["counters"][
                    "proxy.resets_injected"] >= 1
        counters = registry.snapshot()["counters"]
        assert counters.get("client.attempts", 0) >= 1
        return True

    assert run(scenario())


def test_run_robust_burst_returns_outcome_and_snapshot():
    with _server_thread() as server:
        outcome, snapshot = run_robust_burst(
            "127.0.0.1", server.port, _pairs(2, 6, 25, 10), 2,
            policy=RetryPolicy(retries=2, deadline=10.0))
        assert outcome.ok_count == 25
        assert outcome.lost_count == 0
        assert snapshot["counters"]["client.attempts"] == 1
