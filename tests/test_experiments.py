"""Tests for the programmatic experiment runner."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    markdown_report,
    run_all,
    run_experiment,
)


def test_registry_covers_static_artifacts():
    assert set(EXPERIMENTS) == {"E1", "E2", "E3", "E8", "E12"}


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_each_experiment_produces_consistent_table(experiment_id):
    result = run_experiment(experiment_id)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows
    assert all(len(row) == len(result.headers) for row in result.rows)


def test_run_experiment_is_case_insensitive():
    assert run_experiment("e2").experiment_id == "E2"


def test_unknown_experiment_rejected():
    with pytest.raises(InvalidParameterError):
        run_experiment("E99")


def test_e1_census_always_matches():
    result = run_experiment("E1")
    matches_column = [row[-1] for row in result.rows]
    assert all(matches_column)


def test_e2_gap_positive_beyond_k1():
    result = run_experiment("E2")
    for d, k, closed, exact, gap in result.rows:
        if k >= 2:
            assert gap > 0


def test_e12_optimal_never_longer():
    result = run_experiment("E12")
    by_pattern = {}
    for pattern, router, demands, mean_hops, max_load, fairness in result.rows:
        by_pattern.setdefault(pattern, {})[router] = mean_hops
    for pattern, values in by_pattern.items():
        assert values["optimal"] <= values["trivial"] + 1e-9


def test_run_all_sorted_by_id():
    results = run_all()
    ids = [result.experiment_id for result in results]
    assert ids == sorted(ids, key=lambda s: int(s[1:]))


def test_text_rendering():
    text = run_experiment("E8").to_text()
    assert text.startswith("E8 —")
    assert "Moore" in text


def test_markdown_rendering_and_report():
    markdown = run_experiment("E1").to_markdown()
    assert markdown.startswith("## E1")
    assert markdown.count("|") > 10
    report = markdown_report()
    assert report.startswith("# Regenerated experiment tables")
    for experiment_id in EXPERIMENTS:
        assert f"## {experiment_id}" in report


def test_cli_experiments_subcommand(capsys):
    from repro.cli import main

    assert main(["experiments", "--only", "E8"]) == 0
    out = capsys.readouterr().out
    assert "Moore" in out
    assert main(["experiments", "--only", "E8", "--markdown"]) == 0
    assert "## E8" in capsys.readouterr().out


def test_cli_experiments_output_file(tmp_path, capsys):
    from repro.cli import main

    target = tmp_path / "report.md"
    assert main(["experiments", "--only", "E8", "--markdown",
                 "--output", str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert target.read_text().startswith("# Regenerated experiment tables")


# ----------------------------------------------------------------------
# Inventory and pinned reproduction values
# ----------------------------------------------------------------------


def test_inventory_covers_the_package():
    from repro.inventory import inventory, iter_module_names, render_inventory

    names = iter_module_names()
    assert "repro.core.distance" in names
    assert "repro.dht.koorde" in names
    # The route-query service package registers all five of its modules.
    for module in ("protocol", "metrics", "engine", "server", "client"):
        assert f"repro.service.{module}" in names
    cards = inventory()
    assert len(cards) == len(names)
    assert all(card.summary != "(undocumented)" for card in cards)
    listing = render_inventory()
    assert "repro.core.routing" in listing
    assert "ICDCS 1990" in listing


def test_cli_about(capsys):
    from repro.cli import main

    assert main(["about"]) == 0
    out = capsys.readouterr().out
    assert "repro.network.simulator" in out


def test_pinned_reproduction_values():
    """Regression anchors: exact numbers this reproduction stands on."""
    from repro.analysis.exact import directed_average_distance, undirected_average_distance
    from repro.core.average_distance import directed_average_distance_closed_form

    # E2 anchors (exact fractions).
    assert directed_average_distance_closed_form(2, 3) == 2.125
    assert directed_average_distance(2, 3) == pytest.approx(1.84375)
    assert directed_average_distance(2, 4) == pytest.approx(2.65625)
    # E3 anchors.
    assert undirected_average_distance(2, 3) == pytest.approx(1.4375)
    assert undirected_average_distance(2, 4) == pytest.approx(2.0078125)
    # E1 anchors: DG(2,3) edges.
    from repro.graphs.debruijn import directed_graph, undirected_graph

    assert directed_graph(2, 3).size() == 14
    assert undirected_graph(2, 3).size() == 13
