"""Tests for hop-by-hop (destination-only) routing."""

from __future__ import annotations

import random

import pytest

from repro.core.distance import directed_distance, undirected_distance
from repro.exceptions import RoutingError
from repro.network.router import BidirectionalOptimalRouter, StatelessRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import random_pairs
from tests.conftest import all_words


def test_next_hop_decreases_distance():
    router = StatelessRouter()
    x, y = (0, 1, 1, 0), (1, 0, 0, 1)
    step = router.next_hop(x, y)
    from repro.core.routing import apply_step

    landing = apply_step(x, step, 2)
    assert undirected_distance(landing, y) == undirected_distance(x, y) - 1


def test_next_hop_at_destination_raises():
    with pytest.raises(RoutingError):
        StatelessRouter().next_hop((0, 1), (0, 1))


def test_stateless_message_carries_no_path():
    sim = Simulator(2, 4)
    message = sim.send((0, 1, 1, 0), (1, 0, 0, 1), StatelessRouter())
    assert message.routing_path == []
    assert message.hop_router is not None
    sim.run()
    assert message.delivered_at is not None


@pytest.mark.parametrize("bidirectional", [True, False])
def test_stateless_hops_equal_distance(bidirectional):
    d, k = 2, 3
    sim_kwargs = {"bidirectional": bidirectional}
    router = StatelessRouter(bidirectional=bidirectional)
    dist_fn = undirected_distance if bidirectional else directed_distance
    sim = Simulator(d, k, **sim_kwargs)
    targets = []
    t = 0.0
    for x in all_words(d, k):
        for y in all_words(d, k):
            if x != y:
                targets.append((sim.send(x, y, router, at=t), dist_fn(x, y)))
                t += 8.0
    sim.run()
    for message, expected in targets:
        assert message.hop_count == expected


def test_stateless_equals_source_routed_under_load():
    d, k = 2, 4
    workload = random_pairs(d, k, count=80, spacing=2.0, rng=random.Random(3))
    sim_a = Simulator(d, k)
    stats_a = run_workload(sim_a, StatelessRouter(), list(workload))
    sim_b = Simulator(d, k)
    stats_b = run_workload(sim_b, BidirectionalOptimalRouter(use_wildcards=False),
                           list(workload))
    assert stats_a.delivered_count == stats_b.delivered_count == 80
    assert stats_a.mean_hops() == pytest.approx(stats_b.mean_hops())


def test_stateless_adapts_to_midroute_knowledge():
    # The defining property: each hop re-plans from the *current* vertex,
    # so the route self-corrects however the packet got there.  Force a
    # message onto an off-path vertex by delivering it there and resending.
    router = StatelessRouter()
    x, y = (0, 0, 0, 0), (1, 1, 1, 1)
    detour = (0, 1, 0, 1)
    hops_from_detour = undirected_distance(detour, y)
    sim = Simulator(2, 4)
    message = sim.send(detour, y, router)
    sim.run()
    assert message.hop_count == hops_from_detour


def test_stateless_router_plan_still_usable():
    router = StatelessRouter(bidirectional=False)
    path = router.plan((0, 1, 1), (1, 1, 0))
    assert len(path) == directed_distance((0, 1, 1), (1, 1, 0))
