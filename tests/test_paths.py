"""Tests for shortest-path enumeration, counting and sampling."""

from __future__ import annotations

import random
from collections import Counter, deque
from itertools import product

import pytest

from repro.core.distance import undirected_distance
from repro.core.paths import (
    all_shortest_paths,
    count_shortest_paths,
    directed_shortest_path_is_unique,
    iter_shortest_path_vertices,
    random_shortest_path,
)
from repro.core.routing import apply_path
from repro.core.word import left_shift, right_shift
from repro.exceptions import RoutingError
from tests.conftest import all_words


def _all_shortest_vertex_sequences_bfs(x, y, d):
    """Oracle: enumerate shortest vertex sequences by BFS layering."""
    # BFS distances from y (undirected, so symmetric).
    dist = {y: 0}
    queue = deque([y])
    while queue:
        u = queue.popleft()
        for a in range(d):
            for v in (left_shift(u, a), right_shift(u, a)):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
    sequences = []

    def walk(current, acc):
        if current == y:
            sequences.append(list(acc))
            return
        nbrs = set()
        for a in range(d):
            nbrs.add(left_shift(current, a))
            nbrs.add(right_shift(current, a))
        for nxt in sorted(nbrs):
            if dist[nxt] == dist[current] - 1:
                acc.append(nxt)
                walk(nxt, acc)
                acc.pop()

    walk(x, [x])
    return sequences


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2)])
def test_enumeration_matches_bfs_oracle(d, k):
    for x in all_words(d, k):
        for y in all_words(d, k):
            ours = sorted(tuple(map(tuple, seq))
                          for seq in iter_shortest_path_vertices(x, y, d))
            oracle = sorted(tuple(map(tuple, seq))
                            for seq in _all_shortest_vertex_sequences_bfs(x, y, d))
            assert ours == oracle, (x, y)


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2)])
def test_count_matches_enumeration(d, k):
    for x in all_words(d, k):
        for y in all_words(d, k):
            assert count_shortest_paths(x, y, d) == len(all_shortest_paths(x, y, d))


def test_all_paths_are_optimal_and_land_on_target():
    d = 2
    x, y = (0, 1, 1, 0), (1, 0, 0, 1)
    distance = undirected_distance(x, y)
    paths = all_shortest_paths(x, y, d)
    assert paths
    for path in paths:
        assert len(path) == distance
        assert apply_path(x, path, d) == y


def test_same_vertex_single_empty_path():
    assert all_shortest_paths((0, 1), (0, 1), 2) == [[]]
    assert count_shortest_paths((0, 1), (0, 1), 2) == 1


def test_max_paths_cap_raises():
    # 000000 -> 111111 at k=6 has many shortest paths... pick a pair with
    # several and set the cap below the count.
    d = 2
    x, y = (0, 0, 0, 0), (1, 1, 1, 1)
    total = count_shortest_paths(x, y, d)
    assert total > 1
    with pytest.raises(RoutingError):
        all_shortest_paths(x, y, d, max_paths=total - 1)


def test_random_path_is_valid_and_optimal(rng):
    d = 2
    x, y = (0, 1, 1, 0, 1), (1, 1, 0, 0, 0)
    distance = undirected_distance(x, y)
    for _ in range(50):
        path = random_shortest_path(x, y, d, rng)
        assert len(path) == distance
        assert apply_path(x, path, d) == y


def test_random_path_sampling_is_roughly_uniform():
    d = 2
    x, y = (0, 0, 0, 0), (1, 1, 1, 1)
    paths = all_shortest_paths(x, y, d)
    total = len(paths)
    rng = random.Random(7)
    draws = 300 * total
    counter = Counter()
    for _ in range(draws):
        path = tuple(random_shortest_path(x, y, d, rng))
        counter[path] += 1
    assert len(counter) == total  # every path eventually sampled
    expected = draws / total
    for count in counter.values():
        assert abs(count - expected) < 6 * expected**0.5 + 10


def test_directed_walks_of_each_length_are_unique():
    # A length-t walk spells Y = x_{t+1..k} a_1..a_t: for each t there is
    # at most one walk to a given Y — verified by enumeration at k = 3.
    d, k = 2, 3
    for x in all_words(d, k):
        for t in range(k + 1):
            endpoints = Counter()
            for digits in product(range(d), repeat=t):
                current = x
                for a in digits:
                    current = left_shift(current, a)
                endpoints[current] += 1
            # Distinct digit strings land on distinct endpoints, so every
            # reachable endpoint has exactly one length-t walk.
            assert all(ways == 1 for ways in endpoints.values())
    assert directed_shortest_path_is_unique(x, x)
