"""Tests for the simulation trace recorder."""

from __future__ import annotations

import json
import random

import pytest

from repro.exceptions import SimulationError
from repro.network.router import BidirectionalOptimalRouter
from repro.network.simulator import Simulator, run_workload
from repro.network.tracing import TraceRecorder
from repro.network.traffic import random_pairs


def _traced_run(pairs=30, seed=4):
    sim = Simulator(2, 4)
    recorder = TraceRecorder(sim)
    workload = random_pairs(2, 4, count=pairs, spacing=1.0, rng=random.Random(seed))
    stats = run_workload(sim, BidirectionalOptimalRouter(), workload)
    return recorder, stats


def test_trace_captures_every_hop():
    recorder, stats = _traced_run()
    # One INJECT per message plus one ARRIVE per hop plus the final arrive.
    injects = [e for e in recorder.entries if e.kind == "INJECT"]
    arrives = [e for e in recorder.entries if e.kind == "ARRIVE"]
    assert len(injects) == stats.delivered_count
    assert len(arrives) == sum(m.hop_count for m in stats.delivered)


def test_trace_times_are_monotone():
    recorder, _ = _traced_run()
    times = [e.time for e in recorder.entries]
    assert times == sorted(times)


def test_message_timeline_follows_the_trace():
    recorder, stats = _traced_run(pairs=5)
    message = max(stats.delivered, key=lambda m: m.hop_count)
    timeline = recorder.message_timeline(message.message_id)
    assert [e.site for e in timeline] == message.trace
    assert timeline[0].kind == "INJECT"
    assert all(e.kind == "ARRIVE" for e in timeline[1:])


def test_site_activity_counts_match_entries():
    recorder, _ = _traced_run()
    activity = recorder.site_activity()
    assert sum(a.events for a in activity.values()) == len(recorder.entries)
    for act in activity.values():
        assert act.first_time <= act.last_time


def test_busiest_sites_ranked():
    recorder, _ = _traced_run()
    ranked = recorder.busiest_sites(top=3)
    assert len(ranked) <= 3
    counts = [count for _, count in ranked]
    assert counts == sorted(counts, reverse=True)


def test_jsonl_round_trips():
    recorder, _ = _traced_run(pairs=4)
    lines = recorder.to_jsonl().splitlines()
    assert len(lines) == len(recorder.entries)
    for line in lines:
        parsed = json.loads(line)
        assert set(parsed) == {"time", "kind", "site", "message_id"}


def test_failure_events_are_recorded():
    sim = Simulator(2, 3)
    recorder = TraceRecorder(sim)
    sim.fail_node((1, 1, 1), at=2.0)
    sim.recover_node((1, 1, 1), at=5.0)
    sim.run()
    kinds = [e.kind for e in recorder.entries]
    assert kinds == ["FAIL", "RECOVER"]


def test_render_timeline_contains_sites():
    recorder, _ = _traced_run()
    art = recorder.render_timeline(buckets=20, max_sites=4)
    assert "events" in art
    assert "|" in art


def test_render_timeline_empty():
    sim = Simulator(2, 3)
    recorder = TraceRecorder(sim)
    assert recorder.render_timeline() == "(empty trace)"


def test_double_attach_rejected():
    sim = Simulator(2, 3)
    TraceRecorder(sim)
    with pytest.raises(SimulationError):
        TraceRecorder(sim)
