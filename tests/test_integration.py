"""Cross-module integration tests: core × graphs × network × analysis."""

from __future__ import annotations

import random

import pytest

from repro.analysis.exact import directed_distance_matrix, undirected_distance_matrix
from repro.core.distance import directed_distance, undirected_distance
from repro.core.routing import path_words
from repro.core.word import iter_words, word_to_int
from repro.graphs.debruijn import undirected_graph
from repro.graphs.embeddings import embed_ring
from repro.graphs.sequences import hamiltonian_cycle
from repro.network.message import decode_message, encode_message
from repro.network.router import (
    BidirectionalOptimalRouter,
    TableDrivenRouter,
    TrivialRouter,
    UnidirectionalOptimalRouter,
)
from repro.network.simulator import Simulator, run_workload
from repro.network.traffic import all_pairs_once, random_pairs
from tests.conftest import all_words


def test_simulated_hop_counts_equal_matrix_distances():
    """End to end: simulate every pair and compare with the numpy matrix."""
    d, k = 2, 3
    matrix = undirected_distance_matrix(d, k)
    sim = Simulator(d, k)
    workload = list(all_pairs_once(d, k, spacing=20.0))
    stats = run_workload(sim, BidirectionalOptimalRouter(), workload)
    assert stats.delivered_count == len(workload)
    for message in stats.delivered:
        expected = matrix[word_to_int(message.source, d), word_to_int(message.destination, d)]
        assert message.hop_count == expected


def test_directed_simulation_matches_directed_matrix():
    d, k = 2, 3
    matrix = directed_distance_matrix(d, k)
    sim = Simulator(d, k, bidirectional=False)
    workload = list(all_pairs_once(d, k, spacing=20.0))
    stats = run_workload(sim, UnidirectionalOptimalRouter(), workload)
    for message in stats.delivered:
        expected = matrix[word_to_int(message.source, d), word_to_int(message.destination, d)]
        assert message.hop_count == expected


def test_three_routers_agree_on_delivery_but_not_cost():
    d, k = 2, 4
    workload = random_pairs(d, k, count=60, spacing=5.0, rng=random.Random(2))
    results = {}
    for router in (
        BidirectionalOptimalRouter(),
        TableDrivenRouter(undirected_graph(d, k)),
        TrivialRouter(),
    ):
        sim = Simulator(d, k)
        stats = run_workload(sim, router, list(workload))
        assert stats.delivered_count == len(workload)
        results[router.name] = stats.mean_hops()
    # Both shortest-path routers agree; the trivial router pays full k.
    assert results["optimal-bidirectional[auto]"] == pytest.approx(results["table-driven[bi]"])
    assert results["trivial"] == pytest.approx(k)
    assert results["optimal-bidirectional[auto]"] < results["trivial"]


def test_wire_codec_survives_a_simulated_journey():
    """Encode, decode, then actually route with the decoded path."""
    d, k = 2, 4
    x, y = (0, 1, 1, 0), (1, 0, 0, 1)
    sim = Simulator(d, k)
    message = sim.send(x, y, BidirectionalOptimalRouter(use_wildcards=False))
    blob = encode_message(message)
    control, source, destination, path, _ = decode_message(blob)
    assert (source, destination) == (x, y)
    words = path_words(source, path, d)
    assert words[-1] == destination
    sim.run()
    assert message.delivered_at is not None


def test_ring_embedding_traffic_is_single_hop():
    """Neighbor traffic along the embedded ring costs exactly 1 hop."""
    d, k = 2, 4
    ring = embed_ring(d, k)
    sim = Simulator(d, k)
    router = BidirectionalOptimalRouter()
    t = 0.0
    for u, v in zip(ring, ring[1:] + ring[:1]):
        sim.send(u, v, router, at=t)
        t += 5.0
    stats = sim.run()
    assert stats.delivered_count == len(ring)
    assert all(m.hop_count == 1 for m in stats.delivered)


def test_hamiltonian_cycle_vertices_cover_word_space():
    cycle = hamiltonian_cycle(2, 4)
    assert set(cycle) == set(iter_words(2, 4))


def test_distance_functions_against_next_hop_walk():
    """Walking greedy next hops from the table reproduces the distance."""
    from repro.graphs.traversal import next_hop_table

    d, k = 2, 3
    g = undirected_graph(d, k)
    for target in all_words(d, k):
        table = next_hop_table(g, target)
        for source in all_words(d, k):
            steps = 0
            current = source
            while current != target:
                current = table[current]
                steps += 1
            assert steps == undirected_distance(source, target)


def test_undirected_never_worse_than_directed_in_simulation():
    d, k = 2, 4
    workload = random_pairs(d, k, count=40, spacing=5.0, rng=random.Random(9))
    sim_bi = Simulator(d, k)
    stats_bi = run_workload(sim_bi, BidirectionalOptimalRouter(), list(workload))
    sim_uni = Simulator(d, k, bidirectional=False)
    stats_uni = run_workload(sim_uni, UnidirectionalOptimalRouter(), list(workload))
    for m_bi, m_uni in zip(stats_bi.delivered, stats_uni.delivered):
        assert m_bi.hop_count <= m_uni.hop_count


def test_public_api_exports_work_together():
    import repro

    x = repro.parse_word("0110", 2)
    y = repro.parse_word("1110", 2)
    assert repro.undirected_distance(x, y) == 2
    path = repro.route(x, y, d=2)
    assert repro.verify_path(x, y, path, 2)
    assert repro.directed_distance(x, y) == 4
    assert "L" in repro.format_path(path)
