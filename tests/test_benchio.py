"""Tests for the bench-trajectory envelope (repro.benchio)."""

from __future__ import annotations

import json

from repro import benchio


def test_bench_meta_fields():
    meta = benchio.bench_meta()
    assert set(meta) >= {"git_commit", "timestamp", "python", "cpus"}
    assert meta["cpus"] >= 1
    assert meta["python"].count(".") == 2


def test_append_creates_envelope(tmp_path):
    path = str(tmp_path / "BENCH_x.json")
    envelope = benchio.append_record(path, {"value": 1}, bench="x")
    assert envelope["meta"]["schema"] == benchio.SCHEMA_VERSION
    assert envelope["meta"]["bench"] == "x"
    with open(path, encoding="utf-8") as handle:
        on_disk = json.load(handle)
    assert on_disk["results"][0]["value"] == 1
    assert "git_commit" in on_disk["results"][0]["meta"]


def test_append_migrates_legacy_bare_list(tmp_path):
    """A pre-envelope bare-list file is upgraded in place, keeping its
    records (without inventing provenance for them)."""
    path = str(tmp_path / "BENCH_legacy.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([{"old": True}, {"old": True, "n": 2}], handle)
    assert len(benchio.read_history(path)) == 2  # legacy layout readable
    benchio.append_record(path, {"new": True}, bench="legacy")
    with open(path, encoding="utf-8") as handle:
        on_disk = json.load(handle)
    assert isinstance(on_disk, dict)
    results = on_disk["results"]
    assert len(results) == 3
    assert results[0] == {"old": True}  # untouched, no back-dated meta
    assert "meta" in results[2]


def test_read_history_tolerates_missing_and_garbage(tmp_path):
    assert benchio.read_history(str(tmp_path / "absent.json")) == []
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert benchio.read_history(str(bad)) == []
    scalar = tmp_path / "scalar.json"
    scalar.write_text("42", encoding="utf-8")
    assert benchio.read_history(str(scalar)) == []


def test_git_commit_shape():
    commit = benchio.git_commit()
    assert commit == "unknown" or len(commit) == 40
