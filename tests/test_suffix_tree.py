"""Unit tests for :mod:`repro.core.suffix_tree` (Ukkonen vs naive oracle)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import common_substrings_brute
from repro.core.suffix_tree import (
    Alignment,
    GeneralizedSuffixTree,
    SuffixTree,
    build_naive,
    canonical_form,
)

TEXTS = st.lists(st.integers(0, 3), min_size=1, max_size=40).map(tuple)
BINARY_TEXTS = st.lists(st.integers(0, 1), min_size=1, max_size=60).map(tuple)


def _substrings(text):
    out = set()
    for i in range(len(text)):
        for j in range(i + 1, len(text) + 1):
            out.add(text[i:j])
    return out


# ----------------------------------------------------------------------
# Construction correctness (Ukkonen == naive)
# ----------------------------------------------------------------------


@given(TEXTS)
@settings(max_examples=300, deadline=None)
def test_ukkonen_equals_naive_construction(text):
    fast = SuffixTree(text)
    slow = build_naive(text)
    assert canonical_form(fast) == canonical_form(slow)


@given(BINARY_TEXTS)
@settings(max_examples=200, deadline=None)
def test_ukkonen_equals_naive_binary(text):
    assert canonical_form(SuffixTree(text)) == canonical_form(build_naive(text))


def test_known_tree_abab():
    tree = SuffixTree((0, 1, 0, 1))
    assert tree.leaf_count() == 5  # 4 suffixes + sentinel suffix
    assert tree.count_occurrences((0, 1)) == 2
    assert tree.count_occurrences((0, 1, 0)) == 1


def test_all_distinct_symbols():
    tree = SuffixTree((0, 1, 2, 3))
    # Root with 5 leaf children (4 symbols + sentinel): 6 nodes total.
    assert tree.node_count() == 6


def test_repetitive_text():
    tree = SuffixTree((0,) * 10)
    assert tree.count_occurrences((0, 0, 0)) == 8


# ----------------------------------------------------------------------
# Queries against string oracles
# ----------------------------------------------------------------------


@given(TEXTS)
@settings(max_examples=150, deadline=None)
def test_contains_matches_substring_oracle(text):
    tree = SuffixTree(text)
    for sub in list(_substrings(text))[:50]:
        assert tree.contains(sub)
    assert not tree.contains(text + (9,))


@given(BINARY_TEXTS)
@settings(max_examples=150, deadline=None)
def test_occurrences_match_scan_oracle(text):
    tree = SuffixTree(text)
    for pattern in [(0,), (1,), (0, 1), (1, 0), (0, 0, 1)]:
        expected = [
            i for i in range(len(text) - len(pattern) + 1) if text[i : i + len(pattern)] == pattern
        ]
        assert sorted(tree.occurrences(pattern)) == expected


def test_occurrences_of_absent_pattern_is_empty():
    assert SuffixTree((0, 0, 1)).occurrences((1, 1)) == []


@given(TEXTS)
@settings(max_examples=150, deadline=None)
def test_leaf_suffix_indices_are_a_permutation(text):
    tree = SuffixTree(text)
    indices = sorted(node.suffix_index for node in tree.nodes() if node.is_leaf)
    assert indices == list(range(len(text) + 1))  # +1 for the sentinel


@given(TEXTS)
@settings(max_examples=150, deadline=None)
def test_compactness_linear_node_count(text):
    # A compact suffix tree over n+1 leaves has at most 2(n+1) nodes
    # (every internal node has >= 2 children) — the paper's O(n) claim.
    tree = SuffixTree(text)
    n_leaves = len(text) + 1
    assert tree.node_count() <= 2 * n_leaves
    for node in tree.nodes():
        if node is not tree.root and not node.is_leaf:
            assert len(node.children) >= 2


def test_longest_repeated_substring_known():
    # "banana" pattern over ints: 0 1 2 1 2 1 -> longest repeat "1 2 1"
    tree = SuffixTree((0, 1, 2, 1, 2, 1))
    assert tree.longest_repeated_substring() == (1, 2, 1)


def test_longest_repeated_substring_no_repeat():
    assert SuffixTree((0, 1, 2)).longest_repeated_substring() == ()


@given(BINARY_TEXTS)
@settings(max_examples=150, deadline=None)
def test_longest_repeated_substring_matches_brute(text):
    tree = SuffixTree(text)
    result = tree.longest_repeated_substring()
    best = 0
    for sub in _substrings(text):
        count = sum(
            1 for i in range(len(text) - len(sub) + 1) if text[i : i + len(sub)] == sub
        )
        if count >= 2:
            best = max(best, len(sub))
    assert len(result) == best
    if result:
        occurrences = tree.occurrences(result)
        assert len(occurrences) >= 2


# ----------------------------------------------------------------------
# Generalized tree and alignments
# ----------------------------------------------------------------------

PAIRS = st.integers(min_value=2, max_value=3).flatmap(
    lambda d: st.integers(min_value=1, max_value=12).flatmap(
        lambda k: st.tuples(
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
        )
    )
)


def test_generalized_tree_lcs_known():
    tree = GeneralizedSuffixTree((0, 1, 1, 0), (1, 1, 1, 0))
    lcs = tree.longest_common_substring()
    assert lcs.s == 3
    assert (0, 1, 1, 0)[lcs.a : lcs.a + 3] == (1, 1, 1, 0)[lcs.b : lcs.b + 3]


def test_generalized_tree_no_common_symbol():
    tree = GeneralizedSuffixTree((0, 0), (1, 1))
    assert tree.longest_common_substring() == Alignment(0, 0, 0)
    best_l, best_r = tree.best_alignments()
    assert best_l is None and best_r is None


@given(PAIRS)
@settings(max_examples=200, deadline=None)
def test_lcs_matches_brute_force(pair):
    x, y = pair
    tree = GeneralizedSuffixTree(x, y)
    lcs = tree.longest_common_substring()
    brute_best = max((s for _, _, s in common_substrings_brute(x, y)), default=0)
    assert lcs.s == brute_best
    if lcs.s:
        assert x[lcs.a : lcs.a + lcs.s] == y[lcs.b : lcs.b + lcs.s]


@given(PAIRS)
@settings(max_examples=200, deadline=None)
def test_best_alignments_match_brute_force(pair):
    x, y = pair
    tree = GeneralizedSuffixTree(x, y)
    best_l, best_r = tree.best_alignments()
    subs = common_substrings_brute(x, y)
    if not subs:
        assert best_l is None and best_r is None
        return
    expect_l = max(2 * s + (b - a) for a, b, s in subs)
    expect_r = max(2 * s + (a - b) for a, b, s in subs)
    assert best_l is not None and best_r is not None
    assert 2 * best_l.s + (best_l.b - best_l.a) == expect_l
    assert 2 * best_r.s + (best_r.a - best_r.b) == expect_r
    # The witnesses must be genuine common substrings.
    assert x[best_l.a : best_l.a + best_l.s] == y[best_l.b : best_l.b + best_l.s]
    assert x[best_r.a : best_r.a + best_r.s] == y[best_r.b : best_r.b + best_r.s]


# ----------------------------------------------------------------------
# Suffix array and LCP extraction
# ----------------------------------------------------------------------


def _brute_sa_lcp(text):
    n = len(text)
    sa = sorted(range(n), key=lambda i: text[i:])
    lcp = []
    for a, b in zip(sa, sa[1:]):
        s = 0
        while a + s < n and b + s < n and text[a + s] == text[b + s]:
            s += 1
        lcp.append(s)
    return sa, lcp


def test_suffix_array_known_banana_like():
    tree = SuffixTree((1, 2, 3, 2, 3, 2))  # "abcbcb"-ish
    sa, lcp = tree.suffix_array_with_lcp()
    expected_sa, expected_lcp = _brute_sa_lcp(tree.text)
    assert sa == expected_sa
    assert lcp == expected_lcp


@given(TEXTS)
@settings(max_examples=200, deadline=None)
def test_suffix_array_matches_brute(text):
    tree = SuffixTree(text)
    sa, lcp = tree.suffix_array_with_lcp()
    expected_sa, expected_lcp = _brute_sa_lcp(tree.text)
    assert sa == expected_sa
    assert lcp == expected_lcp


@given(BINARY_TEXTS)
@settings(max_examples=150, deadline=None)
def test_suffix_array_is_permutation(text):
    tree = SuffixTree(text)
    sa = tree.suffix_array()
    assert sorted(sa) == list(range(len(text) + 1))


def test_lcp_length_is_one_less_than_sa():
    tree = SuffixTree((0, 1, 0, 1))
    sa, lcp = tree.suffix_array_with_lcp()
    assert len(lcp) == len(sa) - 1
