"""Tests for :mod:`repro.analysis` — numpy kernels, tables, plots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distributions import (
    DistributionSummary,
    directed_summary,
    eq5_comparison_rows,
    figure2_series,
    normalized_gap_rows,
    undirected_summary,
)
from repro.analysis.exact import (
    directed_average_distance,
    directed_bfs_distance_matrix,
    directed_distance_matrix,
    distance_histogram,
    shift_index_vectors,
    undirected_average_distance,
    undirected_distance_matrix,
)
from repro.analysis.tables import format_kv_block, format_table
from repro.analysis.textplot import render_plot
from repro.core.average_distance import (
    directed_average_distance_exact,
    undirected_average_distance_exact,
)
from repro.core.distance import directed_distance, undirected_distance
from repro.core.word import iter_words, word_to_int
from repro.exceptions import InvalidParameterError


# ----------------------------------------------------------------------
# Vectorised kernels vs pure-Python ground truth
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3)])
def test_directed_matrix_matches_pure_function(d, k):
    matrix = directed_distance_matrix(d, k)
    for x in iter_words(d, k):
        for y in iter_words(d, k):
            assert matrix[word_to_int(x, d), word_to_int(y, d)] == directed_distance(x, y)


@pytest.mark.parametrize("d,k", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3)])
def test_undirected_matrix_matches_pure_function(d, k):
    matrix = undirected_distance_matrix(d, k)
    for x in iter_words(d, k):
        for y in iter_words(d, k):
            assert matrix[word_to_int(x, d), word_to_int(y, d)] == undirected_distance(x, y)


@pytest.mark.parametrize("d,k", [(2, 4), (3, 3), (2, 6)])
def test_directed_formula_matrix_equals_bfs_matrix(d, k):
    assert np.array_equal(directed_distance_matrix(d, k), directed_bfs_distance_matrix(d, k))


def test_matrices_have_no_unreached_entries():
    for matrix in (undirected_distance_matrix(2, 5), directed_bfs_distance_matrix(2, 5)):
        assert (matrix >= 0).all()
        assert (matrix <= 5).all()


def test_shift_index_vectors_shape_and_range():
    vectors = shift_index_vectors(2, 3)
    assert len(vectors) == 4
    for vec in vectors:
        assert vec.shape == (8,)
        assert vec.min() >= 0 and vec.max() < 8


def test_average_helpers_match_core_enumeration():
    assert directed_average_distance(2, 3) == pytest.approx(directed_average_distance_exact(2, 3))
    assert undirected_average_distance(2, 3) == pytest.approx(
        undirected_average_distance_exact(2, 3)
    )


def test_memory_guard_rejects_huge_graphs():
    with pytest.raises(InvalidParameterError):
        directed_distance_matrix(2, 30)


def test_distance_histogram_counts_all_pairs():
    histogram = distance_histogram(directed_distance_matrix(2, 3))
    assert sum(histogram.values()) == 64
    assert histogram[0] == 8  # exactly the diagonal


# ----------------------------------------------------------------------
# Distribution summaries and experiment rows
# ----------------------------------------------------------------------


def test_summary_moments():
    summary = DistributionSummary.from_histogram({0: 1, 2: 3})
    assert summary.mean == pytest.approx(1.5)
    assert summary.minimum == 0 and summary.maximum == 2
    assert summary.total_pairs == 4
    assert summary.std == pytest.approx(np.sqrt((1 * 1.5**2 + 3 * 0.5**2) / 4))


def test_directed_summary_mean_matches_exact():
    assert directed_summary(2, 4).mean == pytest.approx(directed_average_distance_exact(2, 4))


def test_undirected_summary_bounds():
    summary = undirected_summary(2, 4)
    assert summary.minimum == 0 and summary.maximum == 4


def test_eq5_rows_show_positive_gap_for_k_ge_2():
    rows = eq5_comparison_rows(d_values=(2, 3), k_max=4)
    for d, k, closed, measured, gap in rows:
        assert gap == pytest.approx(closed - measured)
        if k >= 2:
            assert gap > 0
        else:
            assert gap == pytest.approx(0.0)


def test_figure2_series_monotone_in_k():
    series = figure2_series(d_values=(2, 3), k_max=6, cell_guard=262_144)
    for d, points in series.items():
        ks = [k for k, _ in points]
        means = [m for _, m in points]
        assert ks == sorted(ks)
        assert means == sorted(means)  # average distance grows with k


def test_normalized_gap_rows_shape():
    series = {2: [(1, 0.5), (2, 0.875)]}
    rows = normalized_gap_rows(series)
    assert rows == [(2, 1, 0.5, 0.5), (2, 2, 0.875, 1.125)]


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------


def test_format_table_alignment_and_precision():
    text = format_table(["d", "mean"], [[2, 1.84375]], precision=3)
    lines = text.splitlines()
    assert lines[0].startswith("d")
    assert "1.844" in lines[2]


def test_format_table_bool_rendering():
    assert "yes" in format_table(["ok"], [[True]])


def test_format_kv_block():
    block = format_kv_block("Title", [("key", 1.23456)], precision=2)
    assert block.splitlines()[0] == "Title"
    assert "key: 1.23" in block


def test_render_plot_contains_markers_and_legend():
    plot = render_plot({"d=2": [(1, 0.5), (2, 1.0)], "d=3": [(1, 0.7), (2, 1.4)]})
    assert "o = d=2" in plot
    assert "x = d=3" in plot
    assert "|" in plot


def test_render_plot_empty():
    assert render_plot({}) == "(no data)"


def test_render_plot_single_point():
    plot = render_plot({"s": [(1.0, 2.0)]})
    assert "o = s" in plot
