"""Tests for distributed odd–even transposition sort on the embedded array."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.graphs.embeddings import embed_linear_array
from repro.network.sorting import (
    is_sorted,
    odd_even_transposition_sort,
    sort_trace,
    worst_case_rounds,
)


def test_reverse_order_sorts_in_n_rounds():
    d, k = 2, 3
    n = d**k
    keys = list(range(n))[::-1]
    result = odd_even_transposition_sort(d, k, keys)
    assert result.final_keys == tuple(range(n))
    assert result.rounds_used <= worst_case_rounds(n)


def test_already_sorted_stops_after_two_quiet_rounds():
    result = odd_even_transposition_sort(2, 3, list(range(8)))
    assert result.final_keys == tuple(range(8))
    assert result.rounds_used == 2  # one even and one odd sweep, no swaps


def test_messages_are_counted_per_handshake():
    d, k = 2, 3
    result = odd_even_transposition_sort(d, k, list(range(8)))
    # Round 0 compares pairs (0,1),(2,3),(4,5),(6,7): 4 handshakes.
    # Round 1 compares (1,2),(3,4),(5,6): 3 handshakes.  2 msgs each.
    assert result.messages == 2 * (4 + 3)


def test_placement_maps_sites_to_sorted_keys():
    d, k = 2, 3
    keys = [5, 2, 7, 0, 6, 1, 4, 3]
    result = odd_even_transposition_sort(d, k, keys)
    array = embed_linear_array(d, k)
    assert [result.placement[site] for site in array] == sorted(keys)


@given(st.lists(st.integers(-100, 100), min_size=8, max_size=8))
@settings(max_examples=200)
def test_sorts_any_input_dg23(keys):
    result = odd_even_transposition_sort(2, 3, keys)
    assert list(result.final_keys) == sorted(keys)


@pytest.mark.parametrize("d,k", [(2, 3), (2, 4), (3, 2), (2, 5)])
def test_sorts_random_inputs_various_sizes(d, k):
    rng = random.Random(d * 10 + k)
    n = d**k
    keys = [rng.randrange(1000) for _ in range(n)]
    result = odd_even_transposition_sort(d, k, keys)
    assert list(result.final_keys) == sorted(keys)
    assert result.rounds_used <= n


def test_duplicate_keys_handled():
    result = odd_even_transposition_sort(2, 3, [3, 3, 1, 1, 2, 2, 0, 0])
    assert list(result.final_keys) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_wrong_key_count_rejected():
    with pytest.raises(InvalidParameterError):
        odd_even_transposition_sort(2, 3, [1, 2, 3])


def test_sort_trace_converges_and_has_n_plus_1_states():
    keys = [7, 6, 5, 4, 3, 2, 1, 0]
    trace = sort_trace(2, 3, keys)
    assert len(trace) == 9
    assert trace[0] == tuple(keys)
    assert is_sorted(trace[-1])


def test_worst_case_rounds_guard():
    assert worst_case_rounds(8) == 8
    with pytest.raises(InvalidParameterError):
        worst_case_rounds(0)


def test_zero_one_principle_exhaustive_dg23():
    # The 0-1 principle: a comparison network sorts all inputs iff it
    # sorts all 0/1 inputs.  Check every 0/1 vector at n = 8.
    from itertools import product

    for bits in product((0, 1), repeat=8):
        result = odd_even_transposition_sort(2, 3, list(bits))
        assert is_sorted(result.final_keys), bits
