"""Shared fixtures and oracles for the test suite.

The BFS oracles here are written against raw shift operations (not against
:mod:`repro.graphs`), so graph-module bugs cannot mask core-module bugs.
"""

from __future__ import annotations

import random
from collections import deque
from itertools import product
from typing import Dict, List, Tuple

import pytest

from repro.core.word import WordTuple, left_shift, right_shift

#: (d, k) pairs small enough for exhaustive all-pairs checking.
SMALL_GRAPHS: List[Tuple[int, int]] = [(2, 1), (2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]

#: A slightly larger set used where only per-source BFS is needed.
MEDIUM_GRAPHS: List[Tuple[int, int]] = SMALL_GRAPHS + [(2, 5), (2, 6), (3, 4), (5, 2)]


def all_words(d: int, k: int) -> List[WordTuple]:
    """Every vertex of DG(d, k), lexicographic."""
    return [tuple(w) for w in product(range(d), repeat=k)]


def bfs_oracle(source: WordTuple, d: int, directed: bool) -> Dict[WordTuple, int]:
    """Reference BFS distances from ``source`` over raw shift operations."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        nbrs = [left_shift(current, a) for a in range(d)]
        if not directed:
            nbrs.extend(right_shift(current, a) for a in range(d))
        for nxt in nbrs:
            if nxt not in dist:
                dist[nxt] = dist[current] + 1
                queue.append(nxt)
    return dist


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xDEB0)


@pytest.fixture(params=SMALL_GRAPHS, ids=lambda p: f"d{p[0]}k{p[1]}")
def small_graph_params(request) -> Tuple[int, int]:
    """Parametrised (d, k) for exhaustive checks."""
    return request.param


def random_words(d: int, k: int, count: int, seed: int = 0) -> List[WordTuple]:
    """Deterministic sample of vertices for larger graphs."""
    generator = random.Random(seed)
    return [tuple(generator.randrange(d) for _ in range(k)) for _ in range(count)]
