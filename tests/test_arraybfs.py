"""Byte-identity and selection tests for the array-native BFS kernels.

The array kernels' contract is exact: every output byte — distances
*and* tie-broken next-hop actions — equals what the serial python
kernels produce, across orientations, degrees, and partial row ranges.
The tests here enumerate that contract; the perf claim lives in
benchmarks/bench_big_k.py (E22).
"""

from __future__ import annotations

import pytest

from repro.core import arraybfs
from repro.core.arraybfs import (
    numpy_available,
    resolve_kernel,
    table_rows,
)
from repro.core.batch import distance_matrix
from repro.core.parallel import (
    compile_table_buffers,
    distance_matrix_flat,
    sharded_rows,
)
from repro.exceptions import InvalidParameterError

GRAPHS = [(2, 6), (2, 9), (3, 4), (4, 3)]


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------


def test_resolve_kernel_auto_and_aliases():
    expected = "array" if numpy_available() else "python"
    assert resolve_kernel(None) == expected
    assert resolve_kernel("auto") == expected
    assert resolve_kernel("python") == "python"


def test_resolve_kernel_rejects_unknown():
    with pytest.raises(InvalidParameterError):
        resolve_kernel("simd")


def test_resolve_kernel_array_requires_numpy(monkeypatch):
    monkeypatch.setattr(arraybfs, "_np", None)
    assert resolve_kernel("auto") == "python"
    with pytest.raises(InvalidParameterError):
        resolve_kernel("array")


def test_table_rows_python_fallback_matches_serial():
    # The python path of table_rows must agree with the full compiler
    # even without numpy in the picture.
    dist, act = compile_table_buffers(2, 6, workers=1, kernel="python")
    n = 2**6
    part_dist, part_act = table_rows(2, 6, 10, 20, kernel="python")
    assert bytes(part_dist) == bytes(dist[10 * n:20 * n])
    assert bytes(part_act) == bytes(act[10 * n:20 * n])


# ----------------------------------------------------------------------
# Byte identity (numpy required beyond this point)
# ----------------------------------------------------------------------


pytestmark_np = pytest.mark.skipif(not numpy_available(),
                                   reason="array kernel needs numpy")


@pytestmark_np
@pytest.mark.parametrize("d,k", GRAPHS)
@pytest.mark.parametrize("directed", [False, True])
def test_table_buffers_byte_identical(d, k, directed):
    python = compile_table_buffers(d, k, directed, workers=1,
                                   kernel="python")
    array = compile_table_buffers(d, k, directed, workers=1, kernel="array")
    assert bytes(array[0]) == bytes(python[0])  # distances
    assert bytes(array[1]) == bytes(python[1])  # tie-broken actions


@pytestmark_np
@pytest.mark.parametrize("d,k", GRAPHS)
@pytest.mark.parametrize("directed", [False, True])
def test_matrix_byte_identical(d, k, directed):
    python = distance_matrix_flat(d, k, directed, workers=1, kernel="python")
    array = distance_matrix_flat(d, k, directed, workers=1, kernel="array")
    assert bytes(array) == bytes(python)


@pytestmark_np
def test_batch_distance_matrix_kernel_param():
    assert distance_matrix(2, 7, kernel="array") == \
        distance_matrix(2, 7, kernel="python")


@pytestmark_np
@pytest.mark.parametrize("start,stop", [(0, 1), (7, 8), (5, 21), (0, 64)])
def test_partial_table_rows_match_full_compile(start, stop):
    d, k = 2, 6
    n = d**k
    dist, act = compile_table_buffers(d, k, workers=1, kernel="python")
    part_dist, part_act = table_rows(d, k, start, stop, kernel="array")
    assert bytes(part_dist) == bytes(dist[start * n:stop * n])
    assert bytes(part_act) == bytes(act[start * n:stop * n])


@pytestmark_np
def test_tiny_blocks_do_not_change_bytes():
    # Block boundaries must be invisible: a 1-row block equals the
    # all-at-once result equals the serial kernel.
    d, k = 2, 6
    reference = table_rows(d, k, 0, d**k, kernel="python")
    for block in (1, 3, 64):
        got = table_rows(d, k, 0, d**k, kernel="array", block=block)
        assert got == reference


@pytestmark_np
def test_empty_and_bad_ranges():
    dist, act = table_rows(2, 6, 5, 5, kernel="array")
    assert dist == bytearray() and act == bytearray()
    with pytest.raises(InvalidParameterError):
        table_rows(2, 6, 10, 5, kernel="array")
    with pytest.raises(InvalidParameterError):
        table_rows(2, 6, 0, 65, kernel="array")


@pytestmark_np
def test_sharded_rows_accepts_kernel_across_workers():
    # Kernel choice must not perturb the multi-process assembly path.
    python = sharded_rows("table", 2, 6, workers=2, chunk_size=8,
                          kernel="python")
    array = sharded_rows("table", 2, 6, workers=2, chunk_size=8,
                         kernel="array")
    assert bytes(array[0]) == bytes(python[0])
    assert bytes(array[1]) == bytes(python[1])
