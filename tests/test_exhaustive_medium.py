"""Medium-scale exhaustive validation — wider nets than the unit tests.

These sweep every ordered pair of graphs one size class above the
per-module tests (up to 128 vertices), pinning the full pipeline:
distance functions, both undirected algorithms, wildcard-insensitive path
application, and the numpy kernels, all against each other.  Kept in one
module so the runtime cost (~10 s) is easy to see and control.
"""

from __future__ import annotations

import pytest

from repro.analysis.exact import directed_distance_matrix, undirected_distance_matrix
from repro.core.distance import directed_distance, undirected_distance
from repro.core.routing import (
    shortest_path_undirected,
    shortest_path_unidirectional,
    verify_path,
)
from repro.core.word import iter_words, word_to_int

MEDIUM = [(2, 6), (2, 7), (3, 4), (5, 3)]


@pytest.mark.parametrize("d,k", MEDIUM, ids=lambda v: str(v))
def test_distance_functions_match_matrices_everywhere(d, k):
    directed = directed_distance_matrix(d, k)
    undirected = undirected_distance_matrix(d, k)
    words = list(iter_words(d, k))
    for x in words:
        xi = word_to_int(x, d)
        for y in words:
            yi = word_to_int(y, d)
            assert directed_distance(x, y) == directed[xi, yi]
            assert undirected_distance(x, y, "suffix_tree") == undirected[xi, yi]


@pytest.mark.parametrize("d,k", [(2, 6), (3, 4)], ids=lambda v: str(v))
def test_both_undirected_methods_agree_everywhere(d, k):
    words = list(iter_words(d, k))
    for x in words:
        for y in words:
            assert undirected_distance(x, y, "matching") == undirected_distance(
                x, y, "suffix_tree"
            ), (x, y)


@pytest.mark.parametrize("d,k", [(2, 6), (3, 4)], ids=lambda v: str(v))
def test_all_routes_verify_under_every_wildcard(d, k):
    undirected = undirected_distance_matrix(d, k)
    words = list(iter_words(d, k))
    for x in words:
        xi = word_to_int(x, d)
        for y in words:
            path = shortest_path_undirected(x, y)
            assert len(path) == undirected[xi, word_to_int(y, d)]
            for fill in range(d):
                assert verify_path(x, y, path, d, wildcard=fill), (x, y, fill)


@pytest.mark.parametrize("d,k", [(2, 7), (5, 3)], ids=lambda v: str(v))
def test_directed_routes_exhaustive(d, k):
    directed = directed_distance_matrix(d, k)
    words = list(iter_words(d, k))
    for x in words:
        xi = word_to_int(x, d)
        for y in words:
            path = shortest_path_unidirectional(x, y)
            assert len(path) == directed[xi, word_to_int(y, d)]
            assert verify_path(x, y, path, d)


def test_distance_symmetry_full_matrix():
    import numpy as np

    for d, k in [(2, 7), (3, 4)]:
        matrix = undirected_distance_matrix(d, k)
        assert np.array_equal(matrix, matrix.T)


def test_triangle_inequality_full_matrix():
    import numpy as np

    d, k = 2, 5
    matrix = undirected_distance_matrix(d, k).astype(np.int32)
    n = matrix.shape[0]
    # D[x,z] <= D[x,y] + D[y,z] for all triples, vectorised per y.
    for y in range(n):
        via_y = matrix[:, y][:, None] + matrix[y, :][None, :]
        assert (matrix <= via_y).all()


def test_large_matrices_bfs_vs_formula():
    """DG(2,8) and DG(3,5): 65k/59k pair matrices, formula == BFS."""
    import numpy as np

    from repro.analysis.exact import directed_bfs_distance_matrix

    for d, k in [(2, 8), (3, 5)]:
        assert np.array_equal(
            directed_distance_matrix(d, k), directed_bfs_distance_matrix(d, k)
        )


def test_large_sampled_pure_function_agreement():
    """k = 10 words: the three undirected methods agree on random pairs."""
    import random

    rng = random.Random(1990)
    for _ in range(120):
        k = 10
        x = tuple(rng.randrange(2) for _ in range(k))
        y = tuple(rng.randrange(2) for _ in range(k))
        a = undirected_distance(x, y, "matching")
        b = undirected_distance(x, y, "suffix_tree")
        from repro.core.distance import undirected_distance_brute

        c = undirected_distance_brute(x, y)
        assert a == b == c
        path = shortest_path_undirected(x, y)
        assert len(path) == a
        assert verify_path(x, y, path, 2, wildcard=rng.randrange(2))
