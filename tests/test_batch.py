"""Tests for the batch distance engines (:mod:`repro.core.batch`).

Everything is cross-validated against the per-pair functions — the
acceptance bar is *exact* agreement, exhaustively, on DG(2, 4) and
DG(3, 3) (and a few more small graphs for good measure).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.average_distance import (
    directed_average_distance_closed_form,
    directed_average_distance_exact,
    undirected_average_distance_exact,
)
from repro.core.batch import (
    average_distance_packed,
    directed_distances_many,
    distance_matrix,
    distances_row,
    equation5_crosscheck,
    undirected_distances_many,
)
from repro.core.distance import directed_distance, undirected_distance
from repro.core.packed import PackedSpace
from repro.exceptions import InvalidWordError
from tests.conftest import all_words

#: The two graphs the acceptance criteria name, plus extras.
EXHAUSTIVE_GRAPHS = [(2, 4), (3, 3), (2, 1), (2, 3), (4, 2)]


@pytest.mark.parametrize("d,k", EXHAUSTIVE_GRAPHS, ids=lambda v: str(v))
def test_distance_matrix_matches_pairwise(d, k):
    """matrix[pack(x)][pack(y)] == the pair functions, for every pair."""
    words = all_words(d, k)
    space = PackedSpace(d, k)
    undirected = distance_matrix(d, k, directed=False)
    directed = distance_matrix(d, k, directed=True)
    for x in words:
        px = space.pack(x)
        for y in words:
            py = space.pack(y)
            assert undirected[px][py] == undirected_distance(x, y)
            assert directed[px][py] == directed_distance(x, y)


@pytest.mark.parametrize("d,k", EXHAUSTIVE_GRAPHS, ids=lambda v: str(v))
def test_undirected_distances_many_matches_pairwise(d, k):
    """The streamed one-to-many engine agrees with the pair function."""
    words = all_words(d, k)
    for x in words:
        assert undirected_distances_many(x, words) == [
            undirected_distance(x, y) for y in words
        ]


@pytest.mark.parametrize("d,k", [(2, 4), (3, 3)], ids=lambda v: str(v))
def test_directed_distances_many_matches_pairwise(d, k):
    words = all_words(d, k)
    for x in words:
        assert directed_distances_many(x, words, d) == [
            directed_distance(x, y) for y in words
        ]


@given(
    st.integers(min_value=2, max_value=3).flatmap(
        lambda d: st.integers(min_value=1, max_value=10).flatmap(
            lambda k: st.tuples(
                st.just(d),
                st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
                st.lists(
                    st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
                    min_size=1,
                    max_size=8,
                ),
            )
        )
    )
)
@settings(max_examples=150, deadline=None)
def test_undirected_many_property(case):
    """Random (d, k) spot check of the streaming engine beyond the grid."""
    d, x, ys = case
    assert undirected_distances_many(x, ys) == [
        undirected_distance(x, y) for y in ys
    ]


def test_distances_row_matches_distances_from():
    from repro.core.distance import distances_from

    d, k = 2, 5
    space = PackedSpace(d, k)
    for directed in (False, True):
        for x in all_words(d, k)[:8]:
            row = distances_row(space, space.pack(x), directed=directed)
            reference = distances_from(x, d, directed=directed)
            for y, dist in reference.items():
                assert row[space.pack(y)] == dist


@pytest.mark.parametrize("d,k", [(2, 4), (3, 3), (2, 6)], ids=lambda v: str(v))
def test_average_distance_packed_matches_exact(d, k):
    assert average_distance_packed(d, k, directed=True) == pytest.approx(
        directed_average_distance_exact(d, k), abs=1e-12
    )
    assert average_distance_packed(d, k, directed=False) == pytest.approx(
        undirected_average_distance_exact(d, k), abs=1e-12
    )


@pytest.mark.parametrize("d,k", [(2, 5), (3, 3), (4, 3)], ids=lambda v: str(v))
def test_equation5_crosscheck_is_upper_bound(d, k):
    """Eq. (5) is an upper bound on the exact directed mean (E2 finding)."""
    record = equation5_crosscheck(d, k)
    assert record["closed_form"] == pytest.approx(
        directed_average_distance_closed_form(d, k)
    )
    assert record["gap"] >= 0.0
    assert record["closed_form"] == pytest.approx(record["exact"] + record["gap"])


def test_batch_error_paths():
    space = PackedSpace(2, 3)
    with pytest.raises(InvalidWordError):
        distances_row(space, 8)
    with pytest.raises(InvalidWordError):
        undirected_distances_many((), [])
    with pytest.raises(InvalidWordError):
        undirected_distances_many((0, 1), [(0, 1, 1)])
    with pytest.raises(InvalidWordError):
        directed_distances_many((0, 1), [(0, 2)], d=2)
