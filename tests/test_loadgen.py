"""Tests for the closed-loop load generator: steps, sweeps, soaks."""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.exceptions import ServiceError
from repro.service.engine import RouteQueryEngine
from repro.service.loadgen import (
    LoadScenario,
    StepResult,
    _percentile,
    fleet_rss_bytes,
    read_rss_bytes,
    run_soak,
    run_step,
    run_sweep,
)
from repro.service.server import RouteQueryServer, ServerConfig


def run(coro):
    return asyncio.run(coro)


SCENARIO = LoadScenario(d=2, k=6, want_path=False)


async def _with_server(work):
    """Run ``work(port)`` against a fresh in-loop table-tier server."""
    from repro.core.tables import CompiledRouteTable

    engine = RouteQueryEngine(2, 6, table=CompiledRouteTable.compile(2, 6))
    async with RouteQueryServer(engine, ServerConfig()) as server:
        return await work(server.port), server.snapshot()


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def test_percentile_is_exact_on_known_samples():
    samples = sorted(float(v) for v in range(1, 101))
    assert _percentile(samples, 1.0) == 100.0
    assert _percentile(samples, 0.5) == pytest.approx(50.5)
    assert _percentile(samples, 0.99) == pytest.approx(99.01)
    assert _percentile([], 0.5) == 0.0
    assert _percentile([7.0], 0.99) == 7.0


def test_rss_reading_on_this_platform():
    rss = read_rss_bytes(os.getpid())
    if rss is not None:  # Linux
        assert rss > 1 << 20
        total = fleet_rss_bytes([os.getpid(), os.getpid()])
        assert total == 2 * rss or total > 0  # racy second read is fine
    assert read_rss_bytes(2**22 + 12345) is None  # no such pid


def test_step_result_slo_logic():
    good = StepResult(None, 1.0, 1000, 1000, 0, 0, 1000.0,
                      1.0, 2.0, 3.0, 4.0, slo_ms=50.0)
    assert good.within_slo and good.ok_fraction == 1.0
    slow = StepResult(None, 1.0, 1000, 1000, 0, 0, 1000.0,
                      1.0, 2.0, 60.0, 80.0, slo_ms=50.0)
    assert not slow.within_slo
    lossy = StepResult(None, 1.0, 1000, 990, 0, 10, 1000.0,
                       1.0, 2.0, 3.0, 4.0, slo_ms=50.0)
    assert not lossy.within_slo  # ok fraction below 99.9 %
    unrated = StepResult(None, 1.0, 10, 10, 0, 0, 10.0,
                         1.0, 2.0, 3.0, 4.0)
    assert unrated.within_slo  # no SLO configured

    row = good.to_row()
    assert row["within_slo"] is True and row["queries"] == 1000


def test_scenario_pairs_are_reproducible():
    import random

    first = SCENARIO.pairs(random.Random(3), 5)
    second = SCENARIO.pairs(random.Random(3), 5)
    assert first == second
    assert all(len(x) == 6 and len(y) == 6 for x, y in first)


# ----------------------------------------------------------------------
# Closed-loop steps
# ----------------------------------------------------------------------


def test_run_step_unpaced_answers_and_measures():
    async def work(port):
        return await run_step("127.0.0.1", port, SCENARIO,
                              duration=0.4, connections=2, batch=4)

    step, snapshot = run(_with_server(work))
    assert step.ok > 0 and step.failures == 0 and step.errors == 0
    assert step.achieved_qps > 0
    assert 0.0 < step.p50_ms <= step.p99_ms <= step.max_ms
    assert snapshot["counters"]["server.replies"] >= step.ok


def test_run_step_paced_tracks_offered_rate():
    async def work(port):
        return await run_step("127.0.0.1", port, SCENARIO,
                              duration=1.0, connections=2,
                              offered_qps=400.0, batch=4, slo_ms=100.0)

    step, _ = run(_with_server(work))
    # A paced step on an idle server should achieve roughly its offered
    # rate — generous bounds keep this stable on loaded CI hosts.
    assert 100.0 <= step.achieved_qps <= 800.0
    assert step.offered_qps == 400.0
    assert step.within_slo


def test_run_step_validates_inputs():
    with pytest.raises(ServiceError):
        run(run_step("127.0.0.1", 1, SCENARIO, connections=0))
    with pytest.raises(ServiceError):
        run(run_step("127.0.0.1", 1, SCENARIO, offered_qps=-5.0))


# ----------------------------------------------------------------------
# Sweep: knee detection
# ----------------------------------------------------------------------


def test_run_sweep_finds_knee_on_idle_server():
    async def work(port):
        return await run_sweep("127.0.0.1", port, SCENARIO,
                               rates=[100.0, 300.0], slo_ms=200.0,
                               step_duration=0.5, connections=2,
                               batch=4, warmup=0.1)

    sweep, _ = run(_with_server(work))
    assert len(sweep.steps) == 2
    assert sweep.knee is not None
    assert sweep.sustained_qps > 0
    row = sweep.to_row()
    assert row["slo_ms"] == 200.0
    assert len(row["steps"]) == 2


def test_run_sweep_stops_after_consecutive_breaches():
    # An impossible SLO makes every step breach; the walk must stop
    # after ``stop_after_breach`` steps instead of finishing the ladder.
    async def work(port):
        return await run_sweep("127.0.0.1", port, SCENARIO,
                               rates=[50.0, 60.0, 70.0, 80.0, 90.0],
                               slo_ms=1e-9, step_duration=0.2,
                               connections=1, batch=2, warmup=0.0,
                               stop_after_breach=2)

    sweep, _ = run(_with_server(work))
    assert sweep.knee is None
    assert sweep.sustained_qps == 0.0
    assert len(sweep.steps) == 2


# ----------------------------------------------------------------------
# Soak: churn, slams, drift accounting
# ----------------------------------------------------------------------


def test_run_soak_smoke_with_churn_and_slams():
    async def work(port):
        return await run_soak("127.0.0.1", port, SCENARIO,
                              duration=2.0, connections=2,
                              rss_pids=[os.getpid()],
                              churn_every=0.5, slam_size=64, batch=4)

    soak, snapshot = run(_with_server(work))
    assert soak.queries > 0 and soak.failures == 0
    assert soak.slams >= 1
    assert soak.reconnects >= 1
    assert len(soak.quartile_p99_ms) == 4
    assert all(v >= 0.0 for v in soak.quartile_p99_ms)
    if soak.rss_first_bytes is not None:  # Linux
        assert soak.rss_drift is not None
        assert abs(soak.rss_drift) < 1.0
    degradation = soak.p99_degradation
    assert degradation is None or degradation > 0.0
    row = soak.to_row()
    assert row["queries"] == soak.queries
    # Slams with window=0 hit the admission path; whatever was not
    # OVERLOADED was answered.
    assert snapshot["counters"]["server.replies"] >= soak.ok
