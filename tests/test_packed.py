"""Tests for packed base-d words (:mod:`repro.core.packed`).

The property to pin down is exact agreement with the tuple primitives of
:mod:`repro.core.word`: pack/shift/unpack must commute with
``left_shift``/``right_shift`` for arbitrary (d, k), and every affix
extractor must match its slicing counterpart.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packed import (
    PackedSpace,
    pack,
    packed_left_shift,
    packed_right_shift,
    unpack,
)
from repro.core.word import (
    Word,
    from_packed,
    left_shift,
    packed_space,
    right_shift,
    to_packed,
    word_to_int,
)
from repro.exceptions import InvalidWordError
from tests.conftest import all_words

WORD_STRATEGY = st.integers(min_value=2, max_value=5).flatmap(
    lambda d: st.integers(min_value=1, max_value=16).flatmap(
        lambda k: st.tuples(
            st.just(d),
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k).map(tuple),
            st.integers(0, d - 1),
        )
    )
)


@given(WORD_STRATEGY)
@settings(max_examples=300, deadline=None)
def test_pack_shift_unpack_agrees_with_tuple_shifts(case):
    """pack ∘ shift ∘ unpack == the tuple-level shift, both directions."""
    d, word, digit = case
    k = len(word)
    space = PackedSpace(d, k)
    value = space.pack(word)
    assert space.unpack(value) == word
    assert space.unpack(space.left(value, digit)) == left_shift(word, digit)
    assert space.unpack(space.right(value, digit)) == right_shift(word, digit)
    assert packed_left_shift(value, digit, d, k) == space.left(value, digit)
    assert packed_right_shift(value, digit, d, k) == space.right(value, digit)


@given(WORD_STRATEGY)
@settings(max_examples=200, deadline=None)
def test_affix_extractors_match_slicing(case):
    d, word, _ = case
    k = len(word)
    space = PackedSpace(d, k)
    value = space.pack(word)
    assert space.head(value) == word[0]
    assert space.tail(value) == word[-1]
    for index in range(k):
        assert space.digit(value, index) == word[index]
    for length in range(k + 1):
        assert space.prefix(value, length) == space_pack_partial(d, word[:length])
        assert space.suffix(value, length) == space_pack_partial(d, word[k - length:])


def space_pack_partial(d, digits):
    """Base-d fold of a partial word (the expected affix encoding)."""
    value = 0
    for digit in digits:
        value = value * d + digit
    return value


@given(WORD_STRATEGY)
@settings(max_examples=200, deadline=None)
def test_prefix_range_is_the_common_prefix_group(case):
    d, word, _ = case
    k = len(word)
    space = PackedSpace(d, k)
    value = space.pack(word)
    for length in range(k + 1):
        start, stop = space.prefix_range(value, length)
        assert stop - start == d ** (k - length)
        assert start <= value < stop
        # Exactly the packed values sharing the length-digit prefix.
        assert space.prefix(start, length) == space.prefix(value, length)
        if stop < space.order:
            assert space.prefix(stop, length) != space.prefix(value, length)
        if start > 0:
            assert space.prefix(start - 1, length) != space.prefix(value, length)


def test_packing_matches_word_to_int():
    """The packed encoding is word_to_int's encoding — full interop."""
    for word in all_words(3, 3):
        assert to_packed(word, 3) == word_to_int(word, 3)
        assert from_packed(to_packed(word, 3), 3, 3) == word
        assert Word(word, 3).to_packed() == Word(word, 3).to_int()
        assert Word.from_packed(word_to_int(word, 3), 3, 3).digits == word


def test_neighbors_match_tuple_neighbors():
    space = PackedSpace(2, 4)
    for word in all_words(2, 4):
        value = space.pack(word)
        lefts = [space.unpack(v) for v in space.left_neighbors(value)]
        rights = [space.unpack(v) for v in space.right_neighbors(value)]
        assert lefts == [left_shift(word, a) for a in range(2)]
        assert rights == [right_shift(word, a) for a in range(2)]


def test_validation_and_errors():
    space = PackedSpace(2, 3)
    with pytest.raises(InvalidWordError):
        space.unpack(8)
    with pytest.raises(InvalidWordError):
        space.unpack(-1)
    with pytest.raises(InvalidWordError):
        space.pack_checked((0, 1, 2))
    with pytest.raises(InvalidWordError):
        space.digit(0, 3)
    with pytest.raises(InvalidWordError):
        space.prefix(0, 4)
    with pytest.raises(InvalidWordError):
        space.suffix(0, -1)
    with pytest.raises(InvalidWordError):
        unpack(9, 2, 3)
    assert pack((1, 0, 1), 2) == 5


def test_packed_space_is_cached():
    assert packed_space(2, 5) is packed_space(2, 5)
    assert packed_space(2, 5) is not packed_space(2, 6)
