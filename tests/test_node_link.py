"""Tests for the per-site forwarding rule and the link contention model."""

from __future__ import annotations

import pytest

from repro.core.routing import Direction, RoutingStep
from repro.exceptions import DeliveryError
from repro.network.link import Link
from repro.network.message import ControlCode, Message
from repro.network.node import Node


def _msg(path, destination=(1, 1, 0)):
    return Message(ControlCode.DATA, (0, 1, 1), destination, list(path))


# ----------------------------------------------------------------------
# Node: the paper's pop-and-forward rule
# ----------------------------------------------------------------------


def test_empty_path_is_accepted_at_destination():
    node = Node((1, 1, 0), d=2)
    message = _msg([])
    assert node.process(message, now=5.0) is None
    assert message.delivered_at == 5.0
    assert node.delivered == [message]
    assert message.trace == [(1, 1, 0)]


def test_empty_path_at_wrong_site_raises():
    node = Node((0, 0, 0), d=2)
    with pytest.raises(DeliveryError):
        node.process(_msg([]), now=0.0)


def test_forward_pops_first_pair_and_shifts():
    node = Node((0, 1, 1), d=2)
    message = _msg([RoutingStep(Direction.LEFT, 0), RoutingStep(Direction.RIGHT, 1)])
    target, step = node.process(message, now=0.0)
    assert target == (1, 1, 0)  # X^-(0)
    assert step == RoutingStep(Direction.LEFT, 0)
    assert message.remaining_hops == 1
    assert node.forwarded_count == 1


def test_forward_right_shift():
    node = Node((0, 1, 1), d=2)
    target, _ = node.process(_msg([RoutingStep(Direction.RIGHT, 1)]), now=0.0)
    assert target == (1, 0, 1)  # X^+(1)


def test_wildcard_resolution_prefers_cheapest_link():
    node = Node((0, 1, 1), d=2)
    message = _msg([RoutingStep(Direction.LEFT, None)])
    # X^-(0) = (1,1,0), X^-(1) = (1,1,1); make digit 1 cheaper.
    costs = {(1, 1, 0): 10.0, (1, 1, 1): 1.0}
    target, step = node.process(message, now=0.0, cost_fn=costs.__getitem__)
    assert target == (1, 1, 1)
    assert step == RoutingStep(Direction.LEFT, 1)
    assert message.wildcards_resolved == 1


def test_wildcard_resolution_ties_pick_smallest_digit():
    node = Node((0, 1, 1), d=3)
    target, step = node.forward_target(RoutingStep(Direction.LEFT, None))
    assert step.digit == 0
    assert target == (1, 1, 0)


def test_trace_records_every_visited_site():
    node_a = Node((0, 1, 1), d=2)
    node_b = Node((1, 1, 0), d=2)
    message = _msg([RoutingStep(Direction.LEFT, 0)])
    node_a.process(message, now=0.0)
    node_b.process(message, now=1.0)
    assert message.trace == [(0, 1, 1), (1, 1, 0)]
    assert message.hop_count == 1


# ----------------------------------------------------------------------
# Link: FIFO serialisation and latency
# ----------------------------------------------------------------------


def test_uncontended_link_delivers_after_latency():
    link = Link((0, 0), (0, 1), latency=3.0, service_time=1.0)
    assert link.transmit(10.0) == 13.0
    assert link.carried == 1
    assert link.total_queue_delay == 0.0


def test_contended_link_serialises():
    link = Link((0, 0), (0, 1), latency=1.0, service_time=1.0)
    first = link.transmit(0.0)
    second = link.transmit(0.0)
    third = link.transmit(0.0)
    assert (first, second, third) == (1.0, 2.0, 3.0)
    assert link.total_queue_delay == 0.0 + 1.0 + 2.0
    assert link.mean_queue_delay == 1.0


def test_link_idle_gap_resets_queue():
    link = Link((0, 0), (0, 1))
    link.transmit(0.0)
    assert link.transmit(100.0) == 101.0
    assert link.total_queue_delay == 0.0


def test_earliest_departure_reflects_backlog():
    link = Link((0, 0), (0, 1))
    assert link.earliest_departure(5.0) == 5.0
    link.transmit(5.0)
    assert link.earliest_departure(5.0) == 6.0


def test_mean_queue_delay_zero_when_unused():
    assert Link((0,), (1,)).mean_queue_delay == 0.0


def test_link_key():
    assert Link((0, 1), (1, 1)).key == ((0, 1), (1, 1))
