"""Unit tests for :mod:`repro.core.word` — the d-ary word algebra."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.word import (
    Word,
    all_neighbors,
    format_word,
    int_to_word,
    iter_words,
    left_neighbors,
    left_shift,
    overlap_length,
    parse_word,
    random_word,
    right_neighbors,
    right_shift,
    validate_parameters,
    validate_word,
    word_to_int,
)
from repro.exceptions import InvalidParameterError, InvalidWordError

# ----------------------------------------------------------------------
# Shift operations
# ----------------------------------------------------------------------


def test_left_shift_matches_paper_definition():
    # X^-(a) = (x_2, ..., x_k, a)
    assert left_shift((0, 1, 1), 0) == (1, 1, 0)
    assert left_shift((0, 1, 1), 1) == (1, 1, 1)


def test_right_shift_matches_paper_definition():
    # X^+(a) = (a, x_1, ..., x_{k-1})
    assert right_shift((0, 1, 1), 0) == (0, 0, 1)
    assert right_shift((0, 1, 1), 1) == (1, 0, 1)


def test_shifts_are_inverse_on_overlap():
    word = (0, 1, 2, 1)
    assert right_shift(left_shift(word, 9), word[0]) == word
    assert left_shift(right_shift(word, 9), word[-1]) == word


def test_left_neighbors_enumerates_all_digits():
    assert list(left_neighbors((0, 1), 3)) == [(1, 0), (1, 1), (1, 2)]


def test_right_neighbors_enumerates_all_digits():
    assert list(right_neighbors((0, 1), 3)) == [(0, 0), (1, 0), (2, 0)]


def test_all_neighbors_yields_2d_words():
    assert len(list(all_neighbors((0, 1, 0), 4))) == 8


def test_constant_word_has_self_loop_neighbor():
    assert (1, 1, 1) in set(all_neighbors((1, 1, 1), 2))


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(1, 3), (0, 3), (2, 0), (2, -1), (-2, 2)])
def test_validate_parameters_rejects_bad_values(d, k):
    with pytest.raises(InvalidParameterError):
        validate_parameters(d, k)


@pytest.mark.parametrize("d,k", [(2, 1), (2, 8), (36, 2)])
def test_validate_parameters_accepts_good_values(d, k):
    validate_parameters(d, k)


def test_validate_parameters_rejects_bool():
    with pytest.raises(InvalidParameterError):
        validate_parameters(True, 3)


def test_validate_word_accepts_lists_and_returns_tuple():
    assert validate_word([0, 1, 1], 2, 3) == (0, 1, 1)


@pytest.mark.parametrize("word", [(0, 1), (0, 1, 2), (0, 1, -1), (0, 1, 1, 1)])
def test_validate_word_rejects_bad_words(word):
    with pytest.raises(InvalidWordError):
        validate_word(word, 2, 3)


def test_validate_word_rejects_bool_digit():
    with pytest.raises(InvalidWordError):
        validate_word((0, True, 1), 2, 3)


# ----------------------------------------------------------------------
# Integer and string encodings
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 4), (3, 3), (5, 2)])
def test_int_roundtrip_covers_all_words(d, k):
    for value in range(d**k):
        assert word_to_int(int_to_word(value, d, k), d) == value


def test_word_to_int_head_most_significant():
    assert word_to_int((1, 0, 0), 2) == 4
    assert word_to_int((0, 0, 1), 2) == 1


def test_int_to_word_rejects_out_of_range():
    with pytest.raises(InvalidWordError):
        int_to_word(8, 2, 3)
    with pytest.raises(InvalidWordError):
        int_to_word(-1, 2, 3)


def test_parse_format_roundtrip():
    assert parse_word("0110", 2) == (0, 1, 1, 0)
    assert format_word((0, 1, 1, 0)) == "0110"
    assert parse_word("a9", 11) == (10, 9)
    assert format_word((10, 9)) == "a9"


def test_parse_word_rejects_bad_digit():
    with pytest.raises(InvalidWordError):
        parse_word("012", 2)


def test_parse_word_rejects_empty():
    with pytest.raises(InvalidWordError):
        parse_word("", 2)


def test_parse_word_rejects_huge_alphabet():
    with pytest.raises(InvalidParameterError):
        parse_word("00", 37)


# ----------------------------------------------------------------------
# Enumeration and sampling
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d,k", [(2, 3), (3, 2), (4, 2)])
def test_iter_words_is_complete_sorted_and_unique(d, k):
    words = list(iter_words(d, k))
    assert len(words) == d**k
    assert len(set(words)) == d**k
    assert words == sorted(words)


def test_random_word_is_deterministic_with_seeded_rng():
    a = random_word(3, 5, random.Random(42))
    b = random_word(3, 5, random.Random(42))
    assert a == b
    validate_word(a, 3, 5)


# ----------------------------------------------------------------------
# Overlap (the directed-distance quantity l)
# ----------------------------------------------------------------------


def _overlap_brute(x, y):
    k = len(x)
    best = 0
    for s in range(1, k + 1):
        if x[k - s :] == y[:s]:
            best = s
    return best


@given(
    st.integers(min_value=2, max_value=4).flatmap(
        lambda d: st.tuples(
            st.lists(st.integers(0, d - 1), min_size=1, max_size=12),
            st.lists(st.integers(0, d - 1), min_size=1, max_size=12),
        )
    )
)
@settings(max_examples=300)
def test_overlap_length_matches_brute_force(pair):
    x, y = pair
    n = min(len(x), len(y))
    x, y = tuple(x[:n]), tuple(y[:n])
    assert overlap_length(x, y) == _overlap_brute(x, y)


def test_overlap_length_full_on_equal_words():
    assert overlap_length((0, 1, 0), (0, 1, 0)) == 3


def test_overlap_length_zero_when_no_match():
    assert overlap_length((0, 0, 0), (1, 1, 1)) == 0


def test_overlap_length_nonmonotone_case():
    # suffix "01" == prefix "01" although suffix "1" != prefix "0".
    assert overlap_length((1, 0, 1), (0, 1, 1)) == 2


def test_overlap_length_rejects_length_mismatch():
    with pytest.raises(InvalidWordError):
        overlap_length((0, 1), (0, 1, 1))


# ----------------------------------------------------------------------
# Word wrapper
# ----------------------------------------------------------------------


def test_word_parse_and_str_roundtrip():
    w = Word.parse("0110", d=2)
    assert str(w) == "0110"
    assert w.k == 4
    assert len(w) == 4
    assert w[0] == 0


def test_word_shift_methods():
    w = Word.parse("011", d=2)
    assert w.left(1).digits == (1, 1, 1)
    assert w.right(0).digits == (0, 0, 1)


def test_word_neighbors_count():
    w = Word.parse("012", d=3)
    assert len(list(w.neighbors())) == 6


def test_word_reversed():
    assert Word.parse("001", d=2).reversed().digits == (1, 0, 0)


def test_word_from_int_and_to_int():
    w = Word.from_int(5, d=2, k=3)
    assert w.digits == (1, 0, 1)
    assert w.to_int() == 5


def test_word_rejects_invalid_digits():
    with pytest.raises(InvalidWordError):
        Word((0, 2), d=2)
    with pytest.raises(InvalidWordError):
        Word.parse("011", d=2).left(5)


def test_word_repr_is_informative():
    assert repr(Word.parse("10", d=2)) == "Word('10', d=2)"
