"""Systematic exercise of the library's error branches."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DeBruijnError,
    DeliveryError,
    InvalidParameterError,
    InvalidWordError,
    RoutingError,
    SimulationError,
    WirePathError,
)


def test_exception_hierarchy():
    assert issubclass(InvalidWordError, DeBruijnError)
    assert issubclass(InvalidWordError, ValueError)
    assert issubclass(InvalidParameterError, DeBruijnError)
    assert issubclass(WirePathError, RoutingError)
    assert issubclass(DeliveryError, SimulationError)
    assert issubclass(SimulationError, DeBruijnError)


def test_router_topology_mismatch_raises():
    from repro.network.router import BidirectionalOptimalRouter
    from repro.network.simulator import Simulator

    sim = Simulator(2, 3, bidirectional=False)
    # This pair's optimal bidirectional route genuinely needs a right shift.
    sim.send((0, 1, 1, ), (0, 0, 1), BidirectionalOptimalRouter(use_wildcards=False))
    with pytest.raises(SimulationError):
        sim.run()


def test_unidirectional_router_on_unidirectional_network_is_fine():
    from repro.network.router import UnidirectionalOptimalRouter
    from repro.network.simulator import Simulator

    sim = Simulator(2, 3, bidirectional=False)
    sim.send((0, 1, 1), (0, 0, 1), UnidirectionalOptimalRouter())
    stats = sim.run()
    assert stats.delivered_count == 1


def test_simulator_rejects_invalid_addresses():
    from repro.network.router import TrivialRouter
    from repro.network.simulator import Simulator

    sim = Simulator(2, 3)
    with pytest.raises(InvalidWordError):
        sim.send((0, 1, 2), (0, 0, 1), TrivialRouter())
    with pytest.raises(InvalidWordError):
        sim.send((0, 1, 1), (0, 0), TrivialRouter())


def test_simulator_rejects_bad_parameters():
    from repro.network.simulator import Simulator

    with pytest.raises(InvalidParameterError):
        Simulator(1, 3)


def test_node_rejects_wrong_terminal_site():
    from repro.network.message import ControlCode, Message
    from repro.network.node import Node

    node = Node((0, 0, 0), d=2)
    message = Message(ControlCode.DATA, (0, 0, 1), (1, 1, 1), [])
    with pytest.raises(DeliveryError):
        node.process(message, now=0.0)


def test_witness_path_unknown_case_rejected():
    from repro.core.distance import UndirectedWitness
    from repro.core.routing import path_from_witness

    bogus = UndirectedWitness(1, "l", 1, 1, 1)
    object.__setattr__(bogus, "case", "zigzag")
    with pytest.raises(RoutingError):
        path_from_witness(bogus, (0, 1, 0))


def test_step_application_validates_digit():
    from repro.core.routing import Direction, RoutingStep, apply_step

    with pytest.raises(InvalidWordError):
        apply_step((0, 1), RoutingStep(Direction.LEFT, 5), d=2)
    with pytest.raises(InvalidWordError):
        apply_step((0, 1), RoutingStep(Direction.LEFT, None), d=2, wildcard=7)


def test_suffix_tree_guards():
    from repro.analysis.spectral import adjacency_matrix

    with pytest.raises(InvalidParameterError):
        adjacency_matrix(2, 15)  # over the dense-matrix guard


def test_broadcast_tree_requires_connected_component():
    from repro.exceptions import SimulationError as SimError
    from repro.graphs.debruijn import undirected_graph
    from repro.network.broadcast import broadcast_tree

    class Disconnected:
        """A graph stub whose neighbor relation strands most vertices."""

        def __init__(self):
            self._real = undirected_graph(2, 3)
            self.order = self._real.order

        def vertices(self):
            return self._real.vertices()

        def neighbors(self, v):
            return set()  # nobody reaches anybody

    with pytest.raises(SimError):
        broadcast_tree(Disconnected(), (0, 0, 0))


def test_gdb_route_internal_validation():
    from repro.graphs.generalized import GeneralizedDeBruijnGraph

    graph = GeneralizedDeBruijnGraph(10, 2)
    with pytest.raises(InvalidParameterError):
        graph.distance(0, 12)


def test_koorde_lookup_hop_limit_raises():
    from repro.dht.koorde import KoordeRing

    ring = KoordeRing(6, [1, 17, 40, 55])
    with pytest.raises(RoutingError):
        ring.lookup(1, 50, max_hops=1)


def test_textplot_and_tables_handle_empty():
    from repro.analysis.tables import format_table
    from repro.analysis.textplot import render_plot

    assert render_plot({}) == "(no data)"
    text = format_table(["a"], [])
    assert "a" in text


def test_lfsr_rejects_degenerate_polynomial():
    from repro.graphs.shift_register import LFSR

    with pytest.raises(InvalidParameterError):
        LFSR(0, (0, 1))


def test_sorting_rejects_wrong_count():
    from repro.network.sorting import odd_even_transposition_sort

    with pytest.raises(InvalidParameterError):
        odd_even_transposition_sort(2, 3, [1, 2])


def test_deflection_guard_on_priority():
    from repro.network.deflection import DeflectionNetwork

    with pytest.raises(SimulationError):
        DeflectionNetwork(2, 3, priority="lifo")
