"""Tests for the degree/diameter near-optimality analysis."""

from __future__ import annotations

import pytest

from repro.analysis.moore import (
    TopologyRow,
    asymptotic_efficiency,
    comparison_rows,
    directed_moore_bound,
)
from repro.exceptions import InvalidParameterError
from repro.graphs.kautz import KautzGraph


def test_moore_bound_values():
    assert directed_moore_bound(2, 0) == 1
    assert directed_moore_bound(2, 3) == 1 + 2 + 4 + 8
    assert directed_moore_bound(3, 2) == 1 + 3 + 9


def test_moore_bound_rejects_bad_parameters():
    with pytest.raises(InvalidParameterError):
        directed_moore_bound(0, 2)
    with pytest.raises(InvalidParameterError):
        directed_moore_bound(2, -1)


@pytest.mark.parametrize("d,k", [(2, 3), (2, 6), (3, 3), (4, 2)])
def test_comparison_rows_orders_and_bounds(d, k):
    debruijn, kautz = comparison_rows(d, k)
    assert debruijn.order == d**k
    assert kautz.order == KautzGraph(d, k).order
    assert debruijn.order < kautz.order <= kautz.moore_bound
    assert 0 < debruijn.efficiency < kautz.efficiency <= 1.0


def test_efficiency_approaches_asymptote():
    d = 2
    limit = asymptotic_efficiency(d)
    assert limit == pytest.approx(0.5)
    previous_gap = None
    for k in range(2, 10):
        debruijn, _ = comparison_rows(d, k)
        gap = abs(debruijn.efficiency - limit)
        if previous_gap is not None:
            assert gap < previous_gap  # converges monotonically
        previous_gap = gap
    assert previous_gap < 0.01


def test_kautz_efficiency_asymptote():
    # Kautz approaches (d^2 - 1)/d^2 of the Moore bound.
    d = 3
    debruijn, kautz = comparison_rows(d, 8)
    assert kautz.efficiency == pytest.approx((d * d - 1) / (d * d), abs=1e-3)
    assert debruijn.efficiency == pytest.approx((d - 1) / d, abs=1e-3)


def test_topology_row_is_frozen():
    row = TopologyRow("x", 2, 3, 8, 15)
    with pytest.raises(AttributeError):
        row.order = 9  # type: ignore[misc]
